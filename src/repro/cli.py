"""Command-line front end: ``soteria`` / ``python -m repro``.

Subcommands::

    soteria analyze app.groovy [--dot out.dot] [--smv out.smv]
    soteria env app1.groovy ... [--backend B] [--encoding E] [--kernel K]
    soteria corpus [official|thirdparty|maliot|all] [--jobs N] [--cache-dir D]
    soteria sweep [official|thirdparty|maliot|all] [--jobs N] [--cache-dir D]
                  [--pairs] [--all-corpus] [--backend B] [--encoding E]
                  [--kernel K]
    soteria fuzz [--seed S] [--count N] [--jobs N] [--out DIR]
                 [--mix DATASET] [--encoding E] [--kernel K]
                 [--backend auto|both] [--replay DIR]
    soteria fleet [--households N] [--seed S] [--jobs N] [--cache-dir D]
                  [--templates T] [--variants V] [--telemetry-out F]
                  [--blocklist-out F]
    soteria serve [--host H] [--port P] [--jobs N] [--cache-dir D]
                  [--state-dir D] [--pool process|thread]
                  [--max-pending N] [--tenant-quota N] [--job-ttl S]
    soteria cache [--cache-dir D] [--clear]
    soteria list-properties

``--backend`` selects the union-model checker: ``explicit`` (materialize
the product Kripke structure), ``symbolic`` (BDD-compiled relation, no
product enumeration), ``bmc`` (SAT engines — incremental bounded model
checking, then an IC3/PDR proof attempt, BDD fallback only when both are
inconclusive), ``portfolio`` (shallow BMC raced against the BDD checker
per formula; first conclusive verdict wins), or the default ``auto``
(explicit under the state budget, symbolic above it) — so oversized
interaction clusters are *checked*, not skipped.

``--encoding`` selects the symbolic relation encoding: ``monolithic``
(one fused relation BDD — fine for paper-scale clusters), ``partitioned``
(disjunctive fragment partition with early quantification — scales to
arbitrarily wide unions), or the default ``auto`` (partitioned above a
fragment-count threshold).  ``sweep --all-corpus`` runs the extreme case:
one union environment containing *every* app of the dataset (the full
82-app corpus for ``all``, ~2^115 product states), checked symbolically
end to end.

``--kernel`` selects the BDD kernel the symbolic checker runs on:
``fast`` (the array-backed core — the default behind ``auto``),
``reference`` (the dict-of-nodes manager, kept as the differential
oracle), or ``dd`` where the optional ``dd``/CUDD package is installed.
``fuzz --kernel both`` runs every symbolic pass on reference AND fast,
turning each case into a cross-kernel differential.  Symbolic runs print
a kernel-stats block (live/peak nodes, cache hit rate, reorders) after
the report — the per-process aggregate of the same counters the service
exposes under ``/v1/stats``.

``fuzz`` synthesizes scenario apps beyond the bundled corpus
(:mod:`repro.gen`) and differentially cross-checks the two backends on
every generated environment; injected violations must be flagged by the
matching property.  ``fuzz --backend both`` adds a SAT (``bmc``) pass,
turning each case into a three-way explicit/symbolic/BMC differential.
Failing cases are shrunk to minimal reproducers under ``--out`` and can
be re-run with ``--replay``.

``serve`` runs the analysis-as-a-service HTTP API
(:mod:`repro.service`): POST SmartApp sources to ``/v1/submissions``
(namespaced per tenant via the ``X-Soteria-Tenant`` header), poll job
status and decoded violation witnesses, and read per-stage
artifact-cache counters plus per-tenant job counts from ``/v1/stats``.
Identical resubmissions are deduplicated against the durable job store.
Admission is bounded — at ``--max-pending`` unsettled jobs (or
``--tenant-quota`` for one tenant) new submissions get 429 +
``Retry-After`` — and ``--job-ttl`` garbage-collects settled records
(memory + disk) after that many seconds.  Workers default to a process
pool (``--pool thread`` forces the in-process pool).  ``cache``
inspects a staged artifact cache directory — per-stage entry/byte
counts — and ``--clear`` empties it.

``fleet`` screens a simulated fleet of households — seeded
popularity-weighted installation profiles over the corpus +
``repro.gen`` synthetics — through the canonical-form dedup engine
(:mod:`repro.fleet`): isomorphic households (renamed devices/apps,
permuted members) share one cached verdict, so a million households
screen on one machine.  The run prints aggregate telemetry and the
violation blocklist feed (app combinations known to violate), both
exportable as JSON.

Exit status is 1 when any analyzed app/environment violates a property
(for ``fuzz``: when any case fails either oracle), 0 when everything is
clean, and 2 on usage errors.  ``sweep`` and ``fleet`` exit 3 when
nothing violated but some candidate group's / household's analysis
*failed* outright (e.g. a forced explicit backend hitting the state
budget) — an incomplete screen is not a clean one.
"""

from __future__ import annotations

import argparse
import sys

from repro.mc.kernel import KERNEL_CHOICES, aggregate_kernel_stats
from repro.model.encoder import ENCODINGS
from repro.pipeline.stages import BACKENDS
from repro.service.app import (
    DEFAULT_TENANT_QUOTA as TENANT_QUOTA_DEFAULT,
    MAX_PENDING_JOBS as MAX_PENDING_JOBS_DEFAULT,
)
from repro.reporting.dot import to_dot
from repro.reporting.report import render_report
from repro.reporting.smv import to_smv
from repro.soteria import analyze_app, analyze_environment


def _print_kernel_stats(aggregates: dict[str, dict] | None = None) -> None:
    """Render the process-wide BDD-kernel counters, cache-table style.

    Nothing is printed when no symbolic check ran (explicit-only runs
    have no kernel to report on).
    """
    if aggregates is None:
        aggregates = aggregate_kernel_stats()
    for name in sorted(aggregates):
        agg = aggregates[name]
        hit_rate = agg.get("hit_rate")
        print(f"\nBDD kernel {name}: {agg['runs']} symbolic check(s)")
        for label, value in (
            ("peak nodes", agg.get("peak_nodes")),
            ("max live nodes", agg.get("max_live_nodes")),
            ("cache lookups", agg.get("cache_lookups")),
            ("cache hit rate", None if hit_rate is None else f"{hit_rate:.1%}"),
            ("gc runs", agg.get("gc_runs")),
            ("nodes collected", agg.get("nodes_collected")),
            ("reorders", agg.get("reorders")),
        ):
            if value is not None:
                print(f"  {label:16s} {value}")


def _cmd_analyze(args: argparse.Namespace) -> int:
    with open(args.app, encoding="utf-8") as handle:
        source = handle.read()
    analysis = analyze_app(source, kernel=args.kernel)
    print(render_report(analysis))
    # The symbolic fallback (models past the extractor budget) has no
    # materialized transitions: exporting would silently write an empty
    # graph / an SMV module with no transition relation.
    exportable = analysis.backend == "explicit"
    for flag, renderer, label in (
        (args.dot, to_dot, "state model"),
        (args.smv, to_smv, "SMV module"),
    ):
        if not flag:
            continue
        if not exportable:
            print(
                f"\n{label} NOT written to {flag}: the model was checked "
                "symbolically (too wide to materialize), so there are no "
                "explicit transitions to export"
            )
            continue
        with open(flag, "w", encoding="utf-8") as out:
            out.write(renderer(analysis.model))
        print(f"\n{label} written to {flag}")
    _print_kernel_stats()
    return 1 if analysis.violations else 0


def _cmd_env(args: argparse.Namespace) -> int:
    sources = []
    for path in args.apps:
        with open(path, encoding="utf-8") as handle:
            sources.append(handle.read())
    environment = analyze_environment(
        sources,
        backend=args.backend,
        encoding=args.encoding,
        kernel=args.kernel,
    )
    print(render_report(environment))
    _print_kernel_stats()
    return 1 if environment.violations else 0


def _cmd_corpus(args: argparse.Namespace) -> int:
    from repro.corpus.batch import analyze_corpus
    from repro.corpus.loader import app_ids

    datasets = (
        ["official", "thirdparty", "maliot"] if args.dataset == "all" else [args.dataset]
    )
    # One sweep (one worker pool) even for "all"; print grouped per dataset.
    analyses = analyze_corpus(args.dataset, jobs=args.jobs, cache_dir=args.cache_dir)
    failures = 0
    for dataset in datasets:
        print(f"== dataset: {dataset}")
        for name in app_ids(dataset):
            analysis = analyses[name]
            ids = sorted(analysis.violated_ids())
            status = "VIOLATIONS " + ", ".join(ids) if ids else "clean"
            print(f"  {name:12s} {analysis.model.size():4d} states  {status}")
            failures += bool(ids)
    print(f"\n{failures} app(s) with violations")
    return 1 if failures else 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.corpus.sweep import environment_only_ids, sweep_dataset

    budget = {} if args.max_states is None else {"max_union_states": args.max_states}
    outcomes = sweep_dataset(
        args.dataset,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        pairwise=args.pairs,
        backend=args.backend,
        encoding=args.encoding,
        kernel=args.kernel,
        all_corpus=args.all_corpus,
        **budget,
    )
    kind = "pair" if args.pairs else "group"
    if args.all_corpus:
        kind = "all-corpus union"
    print(f"== sweep: {args.dataset} ({len(outcomes)} candidate {kind}s)")
    failures = 0
    failed = 0
    for outcome in outcomes:
        label = "+".join(outcome.group)
        if len(outcome.group) > 16:
            label = f"{'+'.join(outcome.group[:3])}+...({len(outcome.group)} apps)"
        if outcome.failed:
            print(f"  {label}: FAILED ({outcome.error})")
            failed += 1
            continue
        environment = outcome.environment
        ids = sorted(environment.violated_ids())
        env_only = sorted(environment_only_ids(environment))
        status = "VIOLATIONS " + ", ".join(ids) if ids else "clean"
        tag = ""
        if environment.backend != "explicit":
            tag = f" [{environment.backend}"
            if environment.encoding is not None:
                tag += f"/{environment.encoding}"
            if environment.kernel is not None:
                tag += f"/{environment.kernel}"
            tag += "]"
        estimate = environment.state_estimate
        shown = (
            f"~2^{estimate.bit_length() - 1}" if estimate >= 1 << 40 else str(estimate)
        )
        print(f"  {label}: union {shown} states{tag}  {status}")
        if env_only:
            print(f"    environment-only: {', '.join(env_only)}")
        failures += bool(ids)
    print(f"\n{failures} environment(s) with violations, {failed} failed")
    _print_kernel_stats()
    if failures:
        return 1
    # Failed groups were never verified: "no violations found" is not
    # "clean", so signal the incomplete sweep distinctly for CI gates.
    return 3 if failed else 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.corpus.fuzz import FuzzConfig, replay, run_fuzz

    if args.replay:
        reproduced, message = replay(args.replay)
        print(message)
        return 1 if reproduced else 0

    config = FuzzConfig(
        mix_dataset=args.mix, encoding=args.encoding, kernel=args.kernel,
        backend=args.backend,
    )
    report = run_fuzz(
        seed=args.seed,
        count=args.count,
        jobs=args.jobs,
        config=config,
        out_dir=args.out,
    )
    print(f"== fuzz: seed {args.seed}, {args.count} case(s)")
    for result in report.results:
        label = "+".join(result.app_ids)
        inject = f" [inject {', '.join(result.injected)}]" if result.injected else ""
        line = (
            f"  case {result.index:3d} {result.kind:7s} {label}{inject}"
            f"  union {result.state_estimate} states  {result.status.upper()}"
        )
        print(line)
        if not result.ok:
            print(f"    {result.detail}")
    injected = report.injected_total()
    rate = report.detection_rate()
    print(
        f"\n{len(report.failures())} failing case(s); injected violations "
        f"detected: {report.detected_total()}/{injected} "
        f"({rate:.0%})" if injected else
        f"\n{len(report.failures())} failing case(s); nothing injected"
    )
    if report.failures() and args.out:
        print(f"shrunk reproducers written under {args.out}/")
    return 0 if report.ok else 1


def _cmd_fleet(args: argparse.Namespace) -> int:
    import json

    from repro.fleet.blocklist import combo_label
    from repro.fleet.driver import FleetOptions, run_fleet
    from repro.fleet.profiles import FleetProfile

    profile = FleetProfile(
        seed=args.seed,
        templates=args.templates,
        variants=args.variants,
        corpus_weight=args.corpus_weight,
        inject_rate=args.inject_rate,
    )
    options = FleetOptions(
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        backend=args.backend,
        encoding=args.encoding,
        kernel=args.kernel,
        **({} if args.max_states is None else {"max_union_states": args.max_states}),
    )
    result = run_fleet(profile, args.households, options)
    telemetry = result.telemetry
    print(
        f"== fleet: {telemetry.households} household(s) screened "
        f"(seed {profile.seed}, {profile.templates} templates x "
        f"{profile.variants} variants)"
    )
    print(
        f"  byte-distinct {telemetry.byte_distinct}, canonical-distinct "
        f"{telemetry.canonical_distinct}, fresh checks "
        f"{telemetry.fresh_checks}, disk hits {telemetry.disk_hits}"
    )
    print(
        f"  cache hit rate {telemetry.hit_rate:.2%}, "
        f"{telemetry.households_per_second:,.0f} households/sec "
        f"({telemetry.elapsed:.1f}s)"
    )
    print(
        f"  violating: {telemetry.violating_households} household(s) "
        f"({telemetry.violating_distinct} canonical), failed: "
        f"{telemetry.failed_households} ({telemetry.failed_checks} canonical)"
    )
    if telemetry.by_property:
        top = sorted(telemetry.by_property.items(), key=lambda kv: (-kv[1], kv[0]))
        shown = ", ".join(f"{pid} x{count}" for pid, count in top[:8])
        print(f"  properties: {shown}")
    entries = result.blocklist["entries"]
    print(f"\nblocklist: {len(entries)} violating combination(s)")
    for entry in entries[:10]:
        combo = combo_label(entry["combination"])
        if len(entry["combination"]) > 6:
            combo = (
                combo_label(entry["combination"][:3])
                + f"+...({len(entry['combination'])} apps)"
            )
        print(
            f"  {entry['id']}  {combo}  "
            f"{', '.join(entry['properties'])}  "
            f"({entry['households']} household(s), {entry['share']:.1%})"
        )
    if len(entries) > 10:
        print(f"  ... and {len(entries) - 10} more")
    if args.telemetry_out:
        with open(args.telemetry_out, "w", encoding="utf-8") as out:
            json.dump(telemetry.to_json(), out, indent=2)
            out.write("\n")
        print(f"\ntelemetry written to {args.telemetry_out}")
    if args.blocklist_out:
        with open(args.blocklist_out, "w", encoding="utf-8") as out:
            json.dump(result.blocklist, out, indent=2)
            out.write("\n")
        print(f"blocklist feed written to {args.blocklist_out}")
    _print_kernel_stats()
    return result.exit_code


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service.app import serve

    serve(
        host=args.host,
        port=args.port,
        cache_dir=args.cache_dir,
        state_dir=args.state_dir,
        jobs=args.jobs,
        pool=args.pool,
        max_pending=args.max_pending,
        tenant_quota=args.tenant_quota,
        job_ttl=args.job_ttl,
    )
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.pipeline.store import ArtifactStore, resolve_cache_dir

    root = resolve_cache_dir(args.cache_dir)
    if root is None:
        print(
            "no cache directory: pass --cache-dir or set $REPRO_CACHE_DIR",
            file=sys.stderr,
        )
        return 2
    store = ArtifactStore(root)
    if args.clear:
        store.clear_disk()
        print(f"cleared staged artifact cache under {root}")
        return 0
    info = store.cache_info()
    print(f"staged artifact cache at {root} (pipeline v{store.version})")
    print(f"  {'stage':10s} {'entries':>8s} {'bytes':>12s}")
    total_entries = 0
    total_bytes = 0
    for stage, stats in info["stages"].items():
        print(f"  {stage:10s} {stats['entries']:8d} {stats['bytes']:12d}")
        total_entries += stats["entries"]
        total_bytes += stats["bytes"]
    print(f"  {'total':10s} {total_entries:8d} {total_bytes:12d}")
    if total_entries == 0:
        print("  (empty)")
    return 0


def _cmd_list_properties(_args: argparse.Namespace) -> int:
    from repro.properties.appspecific import APP_SPECIFIC_PROPERTIES

    print("General properties (checked at model construction):")
    for pid, text in (
        ("S.1", "no conflicting attribute values on one path"),
        ("S.2", "no repeated identical attribute writes on one path"),
        ("S.3", "complement events must not produce the same value"),
        ("S.4", "non-complement events must not race to conflicting values"),
        ("S.5", "handled events must be subscribed"),
        ("DET", "the extracted state model must be deterministic"),
    ):
        print(f"  {pid:5s} {text}")
    print("\nApp-specific properties (CTL, checked when devices present):")
    for spec in APP_SPECIFIC_PROPERTIES:
        print(f"  {spec.id:5s} {spec.description}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="soteria",
        description="Soteria: automated IoT safety and security analysis "
        "(USENIX ATC 2018 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_analyze = sub.add_parser("analyze", help="analyze a single app")
    p_analyze.add_argument("app", help="path to a SmartThings .groovy file")
    p_analyze.add_argument("--dot", help="write the state model as GraphViz DOT")
    p_analyze.add_argument("--smv", help="write the state model as NuSMV input")
    p_analyze.add_argument(
        "--kernel",
        choices=list(KERNEL_CHOICES),
        default="auto",
        help="BDD kernel if the app is too wide to check explicitly "
        "(see `soteria env --help`)",
    )
    p_analyze.set_defaults(func=_cmd_analyze)

    p_env = sub.add_parser("env", help="analyze apps installed together")
    p_env.add_argument("apps", nargs="+", help="paths to .groovy files")
    p_env.add_argument(
        "--backend",
        choices=list(BACKENDS),
        default="auto",
        help="union checker: explicit Kripke, symbolic BDDs, bmc (SAT "
        "engines with BDD fallback), portfolio (BMC raced against the "
        "BDD checker), or auto (explicit under the state budget, "
        "symbolic above; default)",
    )
    p_env.add_argument(
        "--encoding",
        choices=list(ENCODINGS),
        default="auto",
        help="symbolic relation encoding: one fused relation BDD "
        "(monolithic), a disjunctive fragment partition with early "
        "quantification (partitioned; scales to arbitrarily wide "
        "unions), or auto (partitioned above a fragment-count "
        "threshold; default)",
    )
    p_env.add_argument(
        "--kernel",
        choices=list(KERNEL_CHOICES),
        default="auto",
        help="BDD kernel for the symbolic checker: the array-backed "
        "fast core (the auto default), the reference dict-of-nodes "
        "manager, or dd/CUDD where installed",
    )
    p_env.set_defaults(func=_cmd_env)

    p_corpus = sub.add_parser("corpus", help="run over the bundled corpus")
    p_corpus.add_argument(
        "dataset",
        nargs="?",
        default="all",
        choices=["official", "thirdparty", "maliot", "all"],
    )
    p_corpus.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for the sweep (default: auto; 1 = serial)",
    )
    p_corpus.add_argument(
        "--cache-dir",
        default=None,
        help="persist analyses under this directory (default: $REPRO_CACHE_DIR)",
    )
    p_corpus.set_defaults(func=_cmd_corpus)

    p_sweep = sub.add_parser(
        "sweep", help="multi-app union analysis over corpus environments"
    )
    p_sweep.add_argument(
        "dataset",
        nargs="?",
        default="all",
        choices=["official", "thirdparty", "maliot", "all"],
    )
    p_sweep.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for the sweep (default: auto; 1 = serial)",
    )
    p_sweep.add_argument(
        "--cache-dir",
        default=None,
        help="persist analyses under this directory (default: $REPRO_CACHE_DIR)",
    )
    p_sweep.add_argument(
        "--pairs",
        action="store_true",
        help="sweep device-sharing app pairs instead of maximal groups",
    )
    p_sweep.add_argument(
        "--all-corpus",
        action="store_true",
        help="check ONE union environment containing every app of the "
        "dataset (the paper's whole-deployment scenario at corpus "
        "scale; rides the symbolic backend's partitioned encoding)",
    )
    p_sweep.add_argument(
        "--max-states",
        type=int,
        default=None,
        help="explicit/symbolic crossover per environment under the auto "
        "backend (default: the sweep engine's 10000); with --backend "
        "explicit, larger groups fail instead",
    )
    p_sweep.add_argument(
        "--backend",
        choices=list(BACKENDS),
        default="auto",
        help="union checker (see `soteria env --help`)",
    )
    p_sweep.add_argument(
        "--encoding",
        choices=list(ENCODINGS),
        default="auto",
        help="symbolic relation encoding (see `soteria env --help`); "
        "auto partitions wide unions — required for --all-corpus scale",
    )
    p_sweep.add_argument(
        "--kernel",
        choices=list(KERNEL_CHOICES),
        default="auto",
        help="BDD kernel for symbolic union checks (see `soteria env "
        "--help`); sweep results are cached per kernel",
    )
    p_sweep.set_defaults(func=_cmd_sweep)

    p_fuzz = sub.add_parser(
        "fuzz",
        help="generate scenario apps and differential-test both backends",
    )
    p_fuzz.add_argument(
        "--seed", type=int, default=0, help="campaign seed (default 0)"
    )
    p_fuzz.add_argument(
        "--count", type=int, default=25, help="cases to run (default 25)"
    )
    p_fuzz.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes (default: auto; 1 = serial)",
    )
    p_fuzz.add_argument(
        "--out",
        default="fuzz-reproducers",
        help="directory for shrunk reproducers of failing cases "
        "(default: fuzz-reproducers)",
    )
    p_fuzz.add_argument(
        "--mix",
        default=None,
        choices=["official", "thirdparty", "maliot"],
        help="mix synthetic apps into this corpus dataset's device "
        "neighborhoods (cross-dataset clusters)",
    )
    p_fuzz.add_argument(
        "--encoding",
        choices=[*ENCODINGS, "both"],
        default="auto",
        help="symbolic encoding(s) to differential-test against the "
        "explicit oracle; 'both' cross-checks monolithic AND "
        "partitioned on every case",
    )
    p_fuzz.add_argument(
        "--kernel",
        choices=[*KERNEL_CHOICES, "both"],
        default="auto",
        help="BDD kernel(s) for the symbolic passes; 'both' runs every "
        "symbolic pass on the reference AND the fast kernel — a "
        "cross-kernel differential on every case",
    )
    p_fuzz.add_argument(
        "--backend",
        choices=["auto", "both"],
        default="auto",
        help="checker backends to differential-test: auto keeps the "
        "classic explicit-vs-symbolic pair; 'both' adds a SAT (bmc) "
        "pass — a three-way explicit/symbolic/BMC differential on "
        "every case",
    )
    p_fuzz.add_argument(
        "--replay",
        default=None,
        help="re-run a persisted reproducer directory instead of fuzzing",
    )
    p_fuzz.set_defaults(func=_cmd_fuzz)

    p_fleet = sub.add_parser(
        "fleet",
        help="screen a simulated fleet of households (canonical-form "
        "dedup + blocklist feed)",
    )
    p_fleet.add_argument(
        "--households",
        type=int,
        default=100_000,
        help="households to sample and screen (default 100000; 1000000 "
        "completes on one machine in bounded memory)",
    )
    p_fleet.add_argument(
        "--seed", type=int, default=0, help="fleet seed (default 0)"
    )
    p_fleet.add_argument(
        "--templates",
        type=int,
        default=150,
        help="distinct household templates in the population (default 150)",
    )
    p_fleet.add_argument(
        "--variants",
        type=int,
        default=4,
        help="renamed skins per template — the byte-diversity the "
        "canonical form must collapse (default 4)",
    )
    p_fleet.add_argument(
        "--corpus-weight",
        type=float,
        default=0.25,
        help="probability a template mixes corpus apps in (default 0.25)",
    )
    p_fleet.add_argument(
        "--inject-rate",
        type=float,
        default=0.4,
        help="violation-injection rate for synthetic members (default 0.4)",
    )
    p_fleet.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="work-stealing worker processes (default 1 = serial)",
    )
    p_fleet.add_argument(
        "--cache-dir",
        default=None,
        help="persist stage artifacts and fleet verdicts under this "
        "directory (default: $REPRO_CACHE_DIR)",
    )
    p_fleet.add_argument(
        "--max-states",
        type=int,
        default=None,
        help="explicit/symbolic crossover per household union (default: "
        "the fleet engine's 512 — far below sweep's, because symbolic "
        "checking is what makes fleet throughput possible)",
    )
    p_fleet.add_argument(
        "--backend",
        choices=list(BACKENDS),
        default="auto",
        help="union checker (see `soteria env --help`)",
    )
    p_fleet.add_argument(
        "--encoding",
        choices=list(ENCODINGS),
        default="auto",
        help="symbolic relation encoding (see `soteria env --help`)",
    )
    p_fleet.add_argument(
        "--kernel",
        choices=list(KERNEL_CHOICES),
        default="auto",
        help="BDD kernel for symbolic checks (see `soteria env --help`)",
    )
    p_fleet.add_argument(
        "--telemetry-out",
        default=None,
        help="write the run's telemetry counters as JSON to this file",
    )
    p_fleet.add_argument(
        "--blocklist-out",
        default=None,
        help="write the violation blocklist feed as JSON to this file",
    )
    p_fleet.set_defaults(func=_cmd_fleet)

    p_serve = sub.add_parser(
        "serve", help="run the analysis-as-a-service HTTP API"
    )
    p_serve.add_argument("--host", default="127.0.0.1", help="bind address")
    p_serve.add_argument(
        "--port", type=int, default=8765, help="bind port (0 = ephemeral)"
    )
    p_serve.add_argument(
        "--jobs", type=int, default=2, help="analysis workers (default 2)"
    )
    p_serve.add_argument(
        "--cache-dir",
        default=None,
        help="share stage artifacts via this directory "
        "(default: $REPRO_CACHE_DIR, else memory-only)",
    )
    p_serve.add_argument(
        "--state-dir",
        default=None,
        help="persist job records under this directory (survives restarts)",
    )
    p_serve.add_argument(
        "--pool",
        choices=["process", "thread"],
        default="process",
        help="worker pool flavor (default: process, falling back to "
        "threads when multiprocessing is unavailable; 'thread' forces "
        "the in-process pool)",
    )
    p_serve.add_argument(
        "--max-pending",
        type=int,
        default=MAX_PENDING_JOBS_DEFAULT,
        help="admission bound on unsettled jobs; past it submissions "
        f"get 429 + Retry-After (default {MAX_PENDING_JOBS_DEFAULT})",
    )
    p_serve.add_argument(
        "--tenant-quota",
        type=int,
        default=TENANT_QUOTA_DEFAULT,
        help="per-tenant bound on unsettled jobs, keyed on the "
        f"X-Soteria-Tenant header (default {TENANT_QUOTA_DEFAULT})",
    )
    p_serve.add_argument(
        "--job-ttl",
        type=float,
        default=None,
        help="garbage-collect settled job records (memory + disk "
        "mirror) after this many seconds (default: keep forever)",
    )
    p_serve.set_defaults(func=_cmd_serve)

    p_cache = sub.add_parser(
        "cache", help="inspect or clear the staged artifact cache"
    )
    p_cache.add_argument(
        "--cache-dir",
        default=None,
        help="cache directory (default: $REPRO_CACHE_DIR)",
    )
    p_cache.add_argument(
        "--clear", action="store_true", help="delete every cached artifact"
    )
    p_cache.set_defaults(func=_cmd_cache)

    p_list = sub.add_parser("list-properties", help="show the property catalog")
    p_list.set_defaults(func=_cmd_list_properties)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
