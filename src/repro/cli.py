"""Command-line front end: ``soteria`` / ``python -m repro``.

Subcommands::

    soteria analyze app.groovy [--dot out.dot] [--smv out.smv]
    soteria env app1.groovy app2.groovy ... [--backend B]
    soteria corpus [official|thirdparty|maliot|all] [--jobs N] [--cache-dir D]
    soteria sweep [official|thirdparty|maliot|all] [--jobs N] [--cache-dir D]
                  [--pairs] [--backend B]
    soteria fuzz [--seed S] [--count N] [--jobs N] [--out DIR]
                 [--mix DATASET] [--replay DIR]
    soteria list-properties

``--backend`` selects the union-model checker: ``explicit`` (materialize
the product Kripke structure), ``symbolic`` (BDD-compiled relation, no
product enumeration), or the default ``auto`` (explicit under the state
budget, symbolic above it) — so oversized interaction clusters are
*checked*, not skipped.

``fuzz`` synthesizes scenario apps beyond the bundled corpus
(:mod:`repro.gen`) and differentially cross-checks the two backends on
every generated environment; injected violations must be flagged by the
matching property.  Failing cases are shrunk to minimal reproducers
under ``--out`` and can be re-run with ``--replay``.

Exit status is 1 when any analyzed app/environment violates a property
(for ``fuzz``: when any case fails either oracle), 0 when everything is
clean, and 2 on usage errors.  ``sweep`` exits 3 when nothing violated
but some candidate group's analysis *failed* outright (e.g. a forced
explicit backend hitting the state budget) — an incomplete sweep is not
a clean one.
"""

from __future__ import annotations

import argparse
import sys

from repro.reporting.dot import to_dot
from repro.reporting.report import render_report
from repro.reporting.smv import to_smv
from repro.soteria import analyze_app, analyze_environment


def _cmd_analyze(args: argparse.Namespace) -> int:
    with open(args.app, encoding="utf-8") as handle:
        source = handle.read()
    analysis = analyze_app(source)
    print(render_report(analysis))
    if args.dot:
        with open(args.dot, "w", encoding="utf-8") as out:
            out.write(to_dot(analysis.model))
        print(f"\nstate model written to {args.dot}")
    if args.smv:
        with open(args.smv, "w", encoding="utf-8") as out:
            out.write(to_smv(analysis.model))
        print(f"SMV module written to {args.smv}")
    return 1 if analysis.violations else 0


def _cmd_env(args: argparse.Namespace) -> int:
    sources = []
    for path in args.apps:
        with open(path, encoding="utf-8") as handle:
            sources.append(handle.read())
    environment = analyze_environment(sources, backend=args.backend)
    print(render_report(environment))
    return 1 if environment.violations else 0


def _cmd_corpus(args: argparse.Namespace) -> int:
    from repro.corpus.batch import analyze_corpus
    from repro.corpus.loader import app_ids

    datasets = (
        ["official", "thirdparty", "maliot"] if args.dataset == "all" else [args.dataset]
    )
    # One sweep (one worker pool) even for "all"; print grouped per dataset.
    analyses = analyze_corpus(args.dataset, jobs=args.jobs, cache_dir=args.cache_dir)
    failures = 0
    for dataset in datasets:
        print(f"== dataset: {dataset}")
        for name in app_ids(dataset):
            analysis = analyses[name]
            ids = sorted(analysis.violated_ids())
            status = "VIOLATIONS " + ", ".join(ids) if ids else "clean"
            print(f"  {name:12s} {analysis.model.size():4d} states  {status}")
            failures += bool(ids)
    print(f"\n{failures} app(s) with violations")
    return 1 if failures else 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.corpus.sweep import environment_only_ids, sweep_dataset

    budget = {} if args.max_states is None else {"max_union_states": args.max_states}
    outcomes = sweep_dataset(
        args.dataset,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        pairwise=args.pairs,
        backend=args.backend,
        **budget,
    )
    kind = "pair" if args.pairs else "group"
    print(f"== sweep: {args.dataset} ({len(outcomes)} candidate {kind}s)")
    failures = 0
    failed = 0
    for outcome in outcomes:
        label = "+".join(outcome.group)
        if outcome.failed:
            print(f"  {label}: FAILED ({outcome.error})")
            failed += 1
            continue
        environment = outcome.environment
        ids = sorted(environment.violated_ids())
        env_only = sorted(environment_only_ids(environment))
        status = "VIOLATIONS " + ", ".join(ids) if ids else "clean"
        tag = f" [{environment.backend}]" if environment.backend != "explicit" else ""
        print(
            f"  {label}: union {environment.state_estimate} states{tag}  {status}"
        )
        if env_only:
            print(f"    environment-only: {', '.join(env_only)}")
        failures += bool(ids)
    print(f"\n{failures} environment(s) with violations, {failed} failed")
    if failures:
        return 1
    # Failed groups were never verified: "no violations found" is not
    # "clean", so signal the incomplete sweep distinctly for CI gates.
    return 3 if failed else 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.corpus.fuzz import FuzzConfig, replay, run_fuzz

    if args.replay:
        reproduced, message = replay(args.replay)
        print(message)
        return 1 if reproduced else 0

    config = FuzzConfig(mix_dataset=args.mix)
    report = run_fuzz(
        seed=args.seed,
        count=args.count,
        jobs=args.jobs,
        config=config,
        out_dir=args.out,
    )
    print(f"== fuzz: seed {args.seed}, {args.count} case(s)")
    for result in report.results:
        label = "+".join(result.app_ids)
        inject = f" [inject {', '.join(result.injected)}]" if result.injected else ""
        line = (
            f"  case {result.index:3d} {result.kind:7s} {label}{inject}"
            f"  union {result.state_estimate} states  {result.status.upper()}"
        )
        print(line)
        if not result.ok:
            print(f"    {result.detail}")
    injected = report.injected_total()
    rate = report.detection_rate()
    print(
        f"\n{len(report.failures())} failing case(s); injected violations "
        f"detected: {report.detected_total()}/{injected} "
        f"({rate:.0%})" if injected else
        f"\n{len(report.failures())} failing case(s); nothing injected"
    )
    if report.failures() and args.out:
        print(f"shrunk reproducers written under {args.out}/")
    return 0 if report.ok else 1


def _cmd_list_properties(_args: argparse.Namespace) -> int:
    from repro.properties.appspecific import APP_SPECIFIC_PROPERTIES

    print("General properties (checked at model construction):")
    for pid, text in (
        ("S.1", "no conflicting attribute values on one path"),
        ("S.2", "no repeated identical attribute writes on one path"),
        ("S.3", "complement events must not produce the same value"),
        ("S.4", "non-complement events must not race to conflicting values"),
        ("S.5", "handled events must be subscribed"),
        ("DET", "the extracted state model must be deterministic"),
    ):
        print(f"  {pid:5s} {text}")
    print("\nApp-specific properties (CTL, checked when devices present):")
    for spec in APP_SPECIFIC_PROPERTIES:
        print(f"  {spec.id:5s} {spec.description}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="soteria",
        description="Soteria: automated IoT safety and security analysis "
        "(USENIX ATC 2018 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_analyze = sub.add_parser("analyze", help="analyze a single app")
    p_analyze.add_argument("app", help="path to a SmartThings .groovy file")
    p_analyze.add_argument("--dot", help="write the state model as GraphViz DOT")
    p_analyze.add_argument("--smv", help="write the state model as NuSMV input")
    p_analyze.set_defaults(func=_cmd_analyze)

    p_env = sub.add_parser("env", help="analyze apps installed together")
    p_env.add_argument("apps", nargs="+", help="paths to .groovy files")
    p_env.add_argument(
        "--backend",
        choices=["auto", "explicit", "symbolic"],
        default="auto",
        help="union checker: explicit Kripke, symbolic BDDs, or auto "
        "(explicit under the state budget, symbolic above; default)",
    )
    p_env.set_defaults(func=_cmd_env)

    p_corpus = sub.add_parser("corpus", help="run over the bundled corpus")
    p_corpus.add_argument(
        "dataset",
        nargs="?",
        default="all",
        choices=["official", "thirdparty", "maliot", "all"],
    )
    p_corpus.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for the sweep (default: auto; 1 = serial)",
    )
    p_corpus.add_argument(
        "--cache-dir",
        default=None,
        help="persist analyses under this directory (default: $REPRO_CACHE_DIR)",
    )
    p_corpus.set_defaults(func=_cmd_corpus)

    p_sweep = sub.add_parser(
        "sweep", help="multi-app union analysis over corpus environments"
    )
    p_sweep.add_argument(
        "dataset",
        nargs="?",
        default="all",
        choices=["official", "thirdparty", "maliot", "all"],
    )
    p_sweep.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for the sweep (default: auto; 1 = serial)",
    )
    p_sweep.add_argument(
        "--cache-dir",
        default=None,
        help="persist analyses under this directory (default: $REPRO_CACHE_DIR)",
    )
    p_sweep.add_argument(
        "--pairs",
        action="store_true",
        help="sweep device-sharing app pairs instead of maximal groups",
    )
    p_sweep.add_argument(
        "--max-states",
        type=int,
        default=None,
        help="explicit/symbolic crossover per environment under the auto "
        "backend (default: the sweep engine's 10000); with --backend "
        "explicit, larger groups fail instead",
    )
    p_sweep.add_argument(
        "--backend",
        choices=["auto", "explicit", "symbolic"],
        default="auto",
        help="union checker: explicit Kripke, symbolic BDDs, or auto "
        "(explicit under the state budget, symbolic above; default)",
    )
    p_sweep.set_defaults(func=_cmd_sweep)

    p_fuzz = sub.add_parser(
        "fuzz",
        help="generate scenario apps and differential-test both backends",
    )
    p_fuzz.add_argument(
        "--seed", type=int, default=0, help="campaign seed (default 0)"
    )
    p_fuzz.add_argument(
        "--count", type=int, default=25, help="cases to run (default 25)"
    )
    p_fuzz.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes (default: auto; 1 = serial)",
    )
    p_fuzz.add_argument(
        "--out",
        default="fuzz-reproducers",
        help="directory for shrunk reproducers of failing cases "
        "(default: fuzz-reproducers)",
    )
    p_fuzz.add_argument(
        "--mix",
        default=None,
        choices=["official", "thirdparty", "maliot"],
        help="mix synthetic apps into this corpus dataset's device "
        "neighborhoods (cross-dataset clusters)",
    )
    p_fuzz.add_argument(
        "--replay",
        default=None,
        help="re-run a persisted reproducer directory instead of fuzzing",
    )
    p_fuzz.set_defaults(func=_cmd_fuzz)

    p_list = sub.add_parser("list-properties", help="show the property catalog")
    p_list.set_defaults(func=_cmd_list_properties)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
