"""Command-line front end: ``soteria`` / ``python -m repro``.

Subcommands::

    soteria analyze app.groovy [--dot out.dot] [--smv out.smv]
    soteria env app1.groovy app2.groovy ...
    soteria corpus [official|thirdparty|maliot|all]
    soteria list-properties
"""

from __future__ import annotations

import argparse
import sys

from repro.reporting.dot import to_dot
from repro.reporting.report import render_report
from repro.reporting.smv import to_smv
from repro.soteria import analyze_app, analyze_environment


def _cmd_analyze(args: argparse.Namespace) -> int:
    with open(args.app, encoding="utf-8") as handle:
        source = handle.read()
    analysis = analyze_app(source)
    print(render_report(analysis))
    if args.dot:
        with open(args.dot, "w", encoding="utf-8") as out:
            out.write(to_dot(analysis.model))
        print(f"\nstate model written to {args.dot}")
    if args.smv:
        with open(args.smv, "w", encoding="utf-8") as out:
            out.write(to_smv(analysis.model))
        print(f"SMV module written to {args.smv}")
    return 1 if analysis.violations else 0


def _cmd_env(args: argparse.Namespace) -> int:
    sources = []
    for path in args.apps:
        with open(path, encoding="utf-8") as handle:
            sources.append(handle.read())
    environment = analyze_environment(sources)
    print(render_report(environment))
    return 1 if environment.violations else 0


def _cmd_corpus(args: argparse.Namespace) -> int:
    from repro.corpus.batch import analyze_corpus
    from repro.corpus.loader import app_ids

    datasets = (
        ["official", "thirdparty", "maliot"] if args.dataset == "all" else [args.dataset]
    )
    # One sweep (one worker pool) even for "all"; print grouped per dataset.
    analyses = analyze_corpus(args.dataset, jobs=args.jobs)
    failures = 0
    for dataset in datasets:
        print(f"== dataset: {dataset}")
        for name in app_ids(dataset):
            analysis = analyses[name]
            ids = sorted(analysis.violated_ids())
            status = "VIOLATIONS " + ", ".join(ids) if ids else "clean"
            print(f"  {name:12s} {analysis.model.size():4d} states  {status}")
            failures += bool(ids)
    print(f"\n{failures} app(s) with violations")
    return 0


def _cmd_list_properties(_args: argparse.Namespace) -> int:
    from repro.properties.appspecific import APP_SPECIFIC_PROPERTIES

    print("General properties (checked at model construction):")
    for pid, text in (
        ("S.1", "no conflicting attribute values on one path"),
        ("S.2", "no repeated identical attribute writes on one path"),
        ("S.3", "complement events must not produce the same value"),
        ("S.4", "non-complement events must not race to conflicting values"),
        ("S.5", "handled events must be subscribed"),
        ("DET", "the extracted state model must be deterministic"),
    ):
        print(f"  {pid:5s} {text}")
    print("\nApp-specific properties (CTL, checked when devices present):")
    for spec in APP_SPECIFIC_PROPERTIES:
        print(f"  {spec.id:5s} {spec.description}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="soteria",
        description="Soteria: automated IoT safety and security analysis "
        "(USENIX ATC 2018 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_analyze = sub.add_parser("analyze", help="analyze a single app")
    p_analyze.add_argument("app", help="path to a SmartThings .groovy file")
    p_analyze.add_argument("--dot", help="write the state model as GraphViz DOT")
    p_analyze.add_argument("--smv", help="write the state model as NuSMV input")
    p_analyze.set_defaults(func=_cmd_analyze)

    p_env = sub.add_parser("env", help="analyze apps installed together")
    p_env.add_argument("apps", nargs="+", help="paths to .groovy files")
    p_env.set_defaults(func=_cmd_env)

    p_corpus = sub.add_parser("corpus", help="run over the bundled corpus")
    p_corpus.add_argument(
        "dataset",
        nargs="?",
        default="all",
        choices=["official", "thirdparty", "maliot", "all"],
    )
    p_corpus.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for the sweep (default: auto; 1 = serial)",
    )
    p_corpus.set_defaults(func=_cmd_corpus)

    p_list = sub.add_parser("list-properties", help="show the property catalog")
    p_list.set_defaults(func=_cmd_list_properties)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
