"""Token definitions for the SmartThings Groovy subset."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TokenKind(enum.Enum):
    """Kinds of lexical tokens produced by :class:`repro.lang.lexer.Lexer`."""

    # Literals
    NUMBER = "number"
    STRING = "string"          # single-quoted, no interpolation
    GSTRING = "gstring"        # double-quoted, value is a list of parts
    IDENT = "ident"
    KEYWORD = "keyword"

    # Punctuation
    LPAREN = "("
    RPAREN = ")"
    LBRACE = "{"
    RBRACE = "}"
    LBRACKET = "["
    RBRACKET = "]"
    COMMA = ","
    DOT = "."
    SAFE_DOT = "?."
    COLON = ":"
    SEMI = ";"
    ARROW = "->"

    # Operators
    ASSIGN = "="
    PLUS_ASSIGN = "+="
    MINUS_ASSIGN = "-="
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    PERCENT = "%"
    POWER = "**"
    EQ = "=="
    NEQ = "!="
    LT = "<"
    GT = ">"
    LE = "<="
    GE = ">="
    SPACESHIP = "<=>"
    AND = "&&"
    OR = "||"
    NOT = "!"
    ELVIS = "?:"
    QUESTION = "?"
    RANGE = ".."
    INCREMENT = "++"
    DECREMENT = "--"

    NEWLINE = "newline"
    EOF = "eof"


#: Reserved words recognised by the lexer.  ``true``/``false``/``null`` are
#: lexed as keywords and turned into literals by the parser.
KEYWORDS = frozenset(
    {
        "def",
        "if",
        "else",
        "while",
        "for",
        "in",
        "return",
        "true",
        "false",
        "null",
        "private",
        "public",
        "new",
        "break",
        "continue",
        "instanceof",
    }
)


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    ``value`` is the decoded payload: for NUMBER an int/float, for STRING the
    text, for GSTRING a tuple of parts (strings and raw interpolation-source
    strings wrapped in :class:`Interp`), otherwise the lexeme itself.
    """

    kind: TokenKind
    value: object
    line: int
    col: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind.name}, {self.value!r}, {self.line}:{self.col})"


@dataclass(frozen=True)
class Interp:
    """An interpolation hole inside a GString.

    ``source`` holds the raw Groovy expression text between ``${`` and ``}``
    (or the identifier path after a bare ``$``).  The parser re-lexes this
    text to build the embedded expression AST.
    """

    source: str

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Interp({self.source!r})"
