"""Recursive-descent parser for the SmartThings Groovy subset.

The grammar follows Groovy's statement/expression structure closely enough to
parse real SmartThings apps:

* *command calls* — ``input "x", "capability.switch", title: "T"`` — a bare
  identifier at statement position followed by an argument list without
  parentheses;
* *trailing closures* — ``section("About") { ... }`` and bare
  ``preferences { ... }``;
* named arguments mixed with positional ones;
* GString interpolation holes re-parsed into expression ASTs;
* reflective calls ``"$name"()``.

Newline handling: NEWLINE tokens terminate statements but are transparent
after an opening brace, ``else``, commas (inside argument lists the lexer
already suppressed them), and binary operators at end-of-line are not
supported (SmartThings code does not use them).
"""

from __future__ import annotations

from repro.lang import ast
from repro.lang.lexer import tokenize
from repro.lang.tokens import Interp, Token, TokenKind


class ParseError(Exception):
    """Raised when the token stream does not match the grammar."""

    def __init__(self, message: str, token: Token) -> None:
        super().__init__(f"{message} at line {token.line}, column {token.col}")
        self.message = message
        self.token = token

    def __reduce__(self):
        # ``args`` holds the formatted string, not the ``__init__``
        # signature, so the default reduce cannot reconstruct the
        # instance — and an exception that fails to unpickle kills the
        # result reader of any process pool shipping it home.
        return (type(self), (self.message, self.token))


# Binary operator precedence, loosest first.
_BINARY_LEVELS: list[tuple[TokenKind, ...]] = [
    (TokenKind.OR,),
    (TokenKind.AND,),
    (TokenKind.EQ, TokenKind.NEQ, TokenKind.SPACESHIP),
    (TokenKind.LT, TokenKind.GT, TokenKind.LE, TokenKind.GE),
    (TokenKind.PLUS, TokenKind.MINUS),
    (TokenKind.STAR, TokenKind.SLASH, TokenKind.PERCENT),
    (TokenKind.POWER,),
]


class Parser:
    """Parses a token list into a :class:`repro.lang.ast.Module`."""

    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # ------------------------------------------------------------------
    # Token helpers
    # ------------------------------------------------------------------
    def _peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _at(self, kind: TokenKind, value: object = None) -> bool:
        token = self._peek()
        if token.kind is not kind:
            return False
        return value is None or token.value == value

    def _advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind is not TokenKind.EOF:
            self.pos += 1
        return token

    def _expect(self, kind: TokenKind, what: str | None = None) -> Token:
        if not self._at(kind):
            raise ParseError(
                f"expected {what or kind.value}, found {self._peek().kind.value!r}",
                self._peek(),
            )
        return self._advance()

    def _skip_newlines(self) -> None:
        while self._peek().kind in (TokenKind.NEWLINE, TokenKind.SEMI):
            self._advance()

    def _end_statement(self) -> None:
        token = self._peek()
        if token.kind in (TokenKind.NEWLINE, TokenKind.SEMI):
            self._advance()
        elif token.kind in (TokenKind.EOF, TokenKind.RBRACE):
            return
        else:
            raise ParseError("expected end of statement", token)

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def parse_module(self) -> ast.Module:
        module = ast.Module(line=1)
        self._skip_newlines()
        while not self._at(TokenKind.EOF):
            if self._is_method_decl():
                decl = self._parse_method_decl()
                module.methods[decl.name] = decl
            else:
                module.statements.append(self._parse_statement())
            self._skip_newlines()
        return module

    # ------------------------------------------------------------------
    # Declarations
    # ------------------------------------------------------------------
    def _is_method_decl(self) -> bool:
        """``def name(`` / ``private name(`` / ``private def name(`` ahead?"""
        offset = 0
        token = self._peek(offset)
        saw_modifier = False
        while token.kind is TokenKind.KEYWORD and token.value in (
            "def",
            "private",
            "public",
        ):
            saw_modifier = True
            offset += 1
            token = self._peek(offset)
        if not saw_modifier:
            return False
        if token.kind is not TokenKind.IDENT:
            return False
        nxt = self._peek(offset + 1)
        if nxt.kind is not TokenKind.LPAREN:
            return False
        # Distinguish "def x = foo(...)" (declaration) from "def h() {".
        # Scan past the balanced parens; a method decl is followed by "{".
        depth = 0
        scan = offset + 1
        while True:
            tok = self._peek(scan)
            if tok.kind is TokenKind.LPAREN:
                depth += 1
            elif tok.kind is TokenKind.RPAREN:
                depth -= 1
                if depth == 0:
                    break
            elif tok.kind is TokenKind.EOF:
                return False
            scan += 1
        scan += 1
        while self._peek(scan).kind is TokenKind.NEWLINE:
            scan += 1
        return self._peek(scan).kind is TokenKind.LBRACE

    def _parse_method_decl(self) -> ast.MethodDecl:
        line = self._peek().line
        is_private = False
        while self._peek().kind is TokenKind.KEYWORD and self._peek().value in (
            "def",
            "private",
            "public",
        ):
            if self._peek().value == "private":
                is_private = True
            self._advance()
        name = str(self._expect(TokenKind.IDENT, "method name").value)
        self._expect(TokenKind.LPAREN)
        params: list[ast.Param] = []
        if not self._at(TokenKind.RPAREN):
            while True:
                # Optional untyped "def" or a type name before the parameter.
                if self._at(TokenKind.KEYWORD, "def"):
                    self._advance()
                elif (
                    self._peek().kind is TokenKind.IDENT
                    and self._peek(1).kind is TokenKind.IDENT
                ):
                    self._advance()  # drop the type annotation
                pname = str(self._expect(TokenKind.IDENT, "parameter name").value)
                default = None
                if self._at(TokenKind.ASSIGN):
                    self._advance()
                    default = self._parse_expression()
                params.append(ast.Param(name=pname, default=default, line=line))
                if self._at(TokenKind.COMMA):
                    self._advance()
                else:
                    break
        self._expect(TokenKind.RPAREN)
        self._skip_newlines()
        body = self._parse_block()
        return ast.MethodDecl(
            name=name, params=params, body=body, is_private=is_private, line=line
        )

    def _parse_block(self) -> ast.Block:
        line = self._peek().line
        self._expect(TokenKind.LBRACE)
        block = ast.Block(line=line)
        self._skip_newlines()
        while not self._at(TokenKind.RBRACE):
            if self._at(TokenKind.EOF):
                raise ParseError("unterminated block", self._peek())
            block.statements.append(self._parse_statement())
            self._skip_newlines()
        self._expect(TokenKind.RBRACE)
        return block

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def _parse_statement(self) -> ast.Stmt:
        token = self._peek()
        if token.kind is TokenKind.KEYWORD:
            if token.value == "if":
                return self._parse_if()
            if token.value == "while":
                return self._parse_while()
            if token.value == "for":
                return self._parse_for()
            if token.value == "return":
                line = self._advance().line
                if self._peek().kind in (
                    TokenKind.NEWLINE,
                    TokenKind.SEMI,
                    TokenKind.RBRACE,
                    TokenKind.EOF,
                ):
                    self._end_statement()
                    return ast.ReturnStmt(value=None, line=line)
                value = self._parse_expression()
                self._end_statement()
                return ast.ReturnStmt(value=value, line=line)
            if token.value == "break":
                line = self._advance().line
                self._end_statement()
                return ast.BreakStmt(line=line)
            if token.value == "continue":
                line = self._advance().line
                self._end_statement()
                return ast.ContinueStmt(line=line)
            if token.value in ("def", "private", "public"):
                return self._parse_declaration()
        return self._parse_expression_statement()

    def _parse_if(self) -> ast.IfStmt:
        line = self._advance().line  # "if"
        self._expect(TokenKind.LPAREN)
        cond = self._parse_expression()
        self._expect(TokenKind.RPAREN)
        self._skip_newlines()
        then = self._parse_block_or_single()
        # Allow "else" on the following line.
        save = self.pos
        self._skip_newlines()
        otherwise: ast.Block | ast.IfStmt | None = None
        if self._at(TokenKind.KEYWORD, "else"):
            self._advance()
            self._skip_newlines()
            if self._at(TokenKind.KEYWORD, "if"):
                otherwise = self._parse_if()
            else:
                otherwise = self._parse_block_or_single()
        else:
            self.pos = save
        return ast.IfStmt(cond=cond, then=then, otherwise=otherwise, line=line)

    def _parse_block_or_single(self) -> ast.Block:
        if self._at(TokenKind.LBRACE):
            return self._parse_block()
        stmt = self._parse_statement()
        return ast.Block(statements=[stmt], line=stmt.line)

    def _parse_while(self) -> ast.WhileStmt:
        line = self._advance().line
        self._expect(TokenKind.LPAREN)
        cond = self._parse_expression()
        self._expect(TokenKind.RPAREN)
        self._skip_newlines()
        body = self._parse_block_or_single()
        return ast.WhileStmt(cond=cond, body=body, line=line)

    def _parse_for(self) -> ast.ForInStmt:
        line = self._advance().line
        self._expect(TokenKind.LPAREN)
        if self._at(TokenKind.KEYWORD, "def"):
            self._advance()
        var = str(self._expect(TokenKind.IDENT, "loop variable").value)
        self._expect(TokenKind.KEYWORD, "in")
        iterable = self._parse_expression()
        self._expect(TokenKind.RPAREN)
        self._skip_newlines()
        body = self._parse_block_or_single()
        return ast.ForInStmt(var=var, iterable=iterable, body=body, line=line)

    def _parse_declaration(self) -> ast.Stmt:
        """``def x = expr`` (and modifier-prefixed variants)."""
        line = self._peek().line
        while self._peek().kind is TokenKind.KEYWORD and self._peek().value in (
            "def",
            "private",
            "public",
        ):
            self._advance()
        # Optional type name: "def String msg" / "private Integer n = ..."
        if (
            self._peek().kind is TokenKind.IDENT
            and self._peek(1).kind is TokenKind.IDENT
        ):
            self._advance()
        name = str(self._expect(TokenKind.IDENT, "variable name").value)
        if self._at(TokenKind.ASSIGN):
            self._advance()
            value = self._parse_expression()
        else:
            value = None
        self._end_statement()
        return ast.Assign(
            target=ast.Name(id=name, line=line),
            value=value,
            is_decl=True,
            line=line,
        )

    def _parse_expression_statement(self) -> ast.Stmt:
        line = self._peek().line
        expr = self._parse_command_or_expression()
        if self._peek().kind in (
            TokenKind.ASSIGN,
            TokenKind.PLUS_ASSIGN,
            TokenKind.MINUS_ASSIGN,
        ):
            op_token = self._advance()
            op = {"=": "=", "+=": "+=", "-=": "-="}[str(op_token.value)]
            value = self._parse_expression()
            self._end_statement()
            return ast.Assign(target=expr, value=value, op=op, line=line)
        if self._peek().kind in (TokenKind.INCREMENT, TokenKind.DECREMENT):
            op_token = self._advance()
            delta = "+=" if op_token.kind is TokenKind.INCREMENT else "-="
            self._end_statement()
            return ast.Assign(
                target=expr, value=ast.Literal(value=1, line=line), op=delta, line=line
            )
        self._end_statement()
        return ast.ExprStmt(expr=expr, line=line)

    # ------------------------------------------------------------------
    # Command calls (parenthesis-free)
    # ------------------------------------------------------------------
    def _parse_command_or_expression(self) -> ast.Expr:
        """At statement position: detect Groovy command calls.

        ``input "x", "y", title: "T"`` — an identifier directly followed by
        the start of an expression (not an operator) is a call whose
        arguments extend to end-of-line.
        """
        token = self._peek()
        if token.kind is TokenKind.IDENT and self._starts_command_args(1):
            name = str(self._advance().value)
            args, named, closure = self._parse_command_args()
            return ast.MethodCall(
                receiver=None,
                name=name,
                args=args,
                named_args=named,
                closure=closure,
                line=token.line,
            )
        expr = self._parse_expression()
        # Command call with a dotted receiver: ``log.trace "..."``.
        if isinstance(expr, ast.PropertyAccess) and self._starts_command_args(0):
            args, named, closure = self._parse_command_args()
            return ast.MethodCall(
                receiver=expr.obj,
                name=expr.name,
                args=args,
                named_args=named,
                closure=closure,
                safe=expr.safe,
                line=expr.line,
            )
        return expr

    _ARG_START = (
        TokenKind.STRING,
        TokenKind.GSTRING,
        TokenKind.NUMBER,
        TokenKind.LBRACKET,
    )

    def _starts_command_args(self, offset: int) -> bool:
        nxt = self._peek(offset)
        if nxt.kind in self._ARG_START:
            return True
        # "name ident" or "name ident:" — named arg or bare identifier arg.
        if nxt.kind is TokenKind.IDENT:
            return True
        if nxt.kind is TokenKind.KEYWORD and nxt.value in ("true", "false", "null"):
            return True
        return False

    def _parse_command_args(
        self,
    ) -> tuple[list[ast.Expr], dict[str, ast.Expr], ast.ClosureExpr | None]:
        args: list[ast.Expr] = []
        named: dict[str, ast.Expr] = {}
        while True:
            if (
                self._peek().kind in (TokenKind.IDENT, TokenKind.STRING)
                and self._peek(1).kind is TokenKind.COLON
            ):
                key = str(self._advance().value)
                self._advance()  # ":"
                named[key] = self._parse_expression()
            else:
                args.append(self._parse_expression())
            if self._at(TokenKind.COMMA):
                self._advance()
                continue
            break
        closure = None
        if self._at(TokenKind.LBRACE):
            closure = self._parse_closure()
        return args, named, closure

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def _parse_expression(self) -> ast.Expr:
        return self._parse_ternary()

    def _parse_ternary(self) -> ast.Expr:
        cond = self._parse_binary(0)
        if self._at(TokenKind.ELVIS):
            line = self._advance().line
            default = self._parse_ternary()
            return ast.Elvis(value=cond, default=default, line=line)
        if self._at(TokenKind.QUESTION):
            line = self._advance().line
            then = self._parse_ternary()
            self._expect(TokenKind.COLON)
            otherwise = self._parse_ternary()
            return ast.Ternary(cond=cond, then=then, otherwise=otherwise, line=line)
        return cond

    def _parse_binary(self, level: int) -> ast.Expr:
        if level >= len(_BINARY_LEVELS):
            return self._parse_unary()
        kinds = _BINARY_LEVELS[level]
        left = self._parse_binary(level + 1)
        while self._peek().kind in kinds:
            op_token = self._advance()
            right = self._parse_binary(level + 1)
            left = ast.BinaryOp(
                op=str(op_token.value), left=left, right=right, line=op_token.line
            )
        # "x as Integer" casts and "x instanceof Y" — parse loosely.
        while self._at(TokenKind.IDENT, "as") or self._at(
            TokenKind.KEYWORD, "instanceof"
        ):
            keyword = self._advance()
            type_name = str(self._expect(TokenKind.IDENT, "type name").value)
            if keyword.value == "as":
                left = ast.CastExpr(value=left, type_name=type_name, line=keyword.line)
            else:
                left = ast.BinaryOp(
                    op="instanceof",
                    left=left,
                    right=ast.Name(id=type_name, line=keyword.line),
                    line=keyword.line,
                )
        return left

    def _parse_unary(self) -> ast.Expr:
        token = self._peek()
        if token.kind in (TokenKind.NOT, TokenKind.MINUS, TokenKind.PLUS):
            self._advance()
            operand = self._parse_unary()
            if (
                token.kind is TokenKind.MINUS
                and isinstance(operand, ast.Literal)
                and isinstance(operand.value, (int, float))
            ):
                return ast.Literal(value=-operand.value, line=token.line)
            op = {"!": "!", "-": "-", "+": "+"}[str(token.value)]
            return ast.UnaryOp(op=op, operand=operand, line=token.line)
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            token = self._peek()
            if token.kind in (TokenKind.DOT, TokenKind.SAFE_DOT):
                safe = token.kind is TokenKind.SAFE_DOT
                self._advance()
                name_token = self._peek()
                if name_token.kind in (TokenKind.IDENT, TokenKind.KEYWORD):
                    self._advance()
                    member = str(name_token.value)
                elif name_token.kind is TokenKind.STRING:
                    self._advance()
                    member = str(name_token.value)
                else:
                    raise ParseError("expected member name after '.'", name_token)
                if self._at(TokenKind.LPAREN):
                    args, named, closure = self._parse_paren_args()
                    if self._at(TokenKind.LBRACE):
                        closure = self._parse_closure()
                    expr = ast.MethodCall(
                        receiver=expr,
                        name=member,
                        args=args,
                        named_args=named,
                        closure=closure,
                        safe=safe,
                        line=token.line,
                    )
                elif self._at(TokenKind.LBRACE):
                    closure = self._parse_closure()
                    expr = ast.MethodCall(
                        receiver=expr,
                        name=member,
                        closure=closure,
                        safe=safe,
                        line=token.line,
                    )
                else:
                    expr = ast.PropertyAccess(
                        obj=expr, name=member, safe=safe, line=token.line
                    )
            elif token.kind is TokenKind.LBRACKET:
                self._advance()
                key = self._parse_expression()
                self._expect(TokenKind.RBRACKET)
                expr = ast.Index(obj=expr, key=key, line=token.line)
            elif token.kind is TokenKind.LPAREN and isinstance(expr, ast.GString):
                # Reflective call: "$name"(args)
                args, named, closure = self._parse_paren_args()
                expr = ast.MethodCall(
                    receiver=None,
                    name=expr,
                    args=args,
                    named_args=named,
                    closure=closure,
                    line=token.line,
                )
            else:
                return expr

    def _parse_paren_args(
        self,
    ) -> tuple[list[ast.Expr], dict[str, ast.Expr], ast.ClosureExpr | None]:
        self._expect(TokenKind.LPAREN)
        args: list[ast.Expr] = []
        named: dict[str, ast.Expr] = {}
        closure = None
        if not self._at(TokenKind.RPAREN):
            while True:
                if (
                    self._peek().kind in (TokenKind.IDENT, TokenKind.STRING)
                    and self._peek(1).kind is TokenKind.COLON
                ):
                    key = str(self._advance().value)
                    self._advance()
                    named[key] = self._parse_expression()
                elif self._at(TokenKind.LBRACE):
                    closure = self._parse_closure()
                else:
                    args.append(self._parse_expression())
                if self._at(TokenKind.COMMA):
                    self._advance()
                else:
                    break
        self._expect(TokenKind.RPAREN)
        return args, named, closure

    def _parse_closure(self) -> ast.ClosureExpr:
        line = self._peek().line
        self._expect(TokenKind.LBRACE)
        self._skip_newlines()
        params: list[str] = []
        # Detect a parameter list: IDENT [, IDENT]* ->
        save = self.pos
        maybe_params: list[str] = []
        ok = False
        while self._peek().kind is TokenKind.IDENT:
            maybe_params.append(str(self._advance().value))
            if self._at(TokenKind.COMMA):
                self._advance()
                continue
            if self._at(TokenKind.ARROW):
                self._advance()
                ok = True
            break
        if ok:
            params = maybe_params
        else:
            self.pos = save
        body = ast.Block(line=line)
        self._skip_newlines()
        while not self._at(TokenKind.RBRACE):
            if self._at(TokenKind.EOF):
                raise ParseError("unterminated closure", self._peek())
            body.statements.append(self._parse_statement())
            self._skip_newlines()
        self._expect(TokenKind.RBRACE)
        return ast.ClosureExpr(params=params, body=body, line=line)

    def _parse_primary(self) -> ast.Expr:
        token = self._peek()
        if token.kind is TokenKind.NUMBER:
            self._advance()
            return ast.Literal(value=token.value, line=token.line)
        if token.kind is TokenKind.STRING:
            self._advance()
            return ast.Literal(value=token.value, line=token.line)
        if token.kind is TokenKind.GSTRING:
            self._advance()
            return self._build_gstring(token)
        if token.kind is TokenKind.KEYWORD:
            if token.value == "true":
                self._advance()
                return ast.Literal(value=True, line=token.line)
            if token.value == "false":
                self._advance()
                return ast.Literal(value=False, line=token.line)
            if token.value == "null":
                self._advance()
                return ast.Literal(value=None, line=token.line)
            if token.value == "new":
                self._advance()
                type_name = str(self._expect(TokenKind.IDENT, "type name").value)
                args: list[ast.Expr] = []
                if self._at(TokenKind.LPAREN):
                    args, _named, _closure = self._parse_paren_args()
                return ast.NewExpr(type_name=type_name, args=args, line=token.line)
            raise ParseError(f"unexpected keyword {token.value!r}", token)
        if token.kind is TokenKind.IDENT:
            self._advance()
            name = str(token.value)
            if self._at(TokenKind.LPAREN):
                args, named, closure = self._parse_paren_args()
                if self._at(TokenKind.LBRACE):
                    closure = self._parse_closure()
                return ast.MethodCall(
                    receiver=None,
                    name=name,
                    args=args,
                    named_args=named,
                    closure=closure,
                    line=token.line,
                )
            if self._at(TokenKind.LBRACE):
                closure = self._parse_closure()
                return ast.MethodCall(
                    receiver=None, name=name, closure=closure, line=token.line
                )
            return ast.Name(id=name, line=token.line)
        if token.kind is TokenKind.LPAREN:
            self._advance()
            expr = self._parse_expression()
            self._expect(TokenKind.RPAREN)
            return expr
        if token.kind is TokenKind.LBRACKET:
            return self._parse_list_or_map()
        if token.kind is TokenKind.LBRACE:
            return self._parse_closure()
        raise ParseError(f"unexpected token {token.kind.value!r}", token)

    def _parse_list_or_map(self) -> ast.Expr:
        token = self._expect(TokenKind.LBRACKET)
        if self._at(TokenKind.COLON):  # empty map [:]
            self._advance()
            self._expect(TokenKind.RBRACKET)
            return ast.MapLiteral(entries=[], line=token.line)
        if self._at(TokenKind.RBRACKET):
            self._advance()
            return ast.ListLiteral(items=[], line=token.line)
        # Map if "key:" follows the first expression position.
        if (
            self._peek().kind in (TokenKind.IDENT, TokenKind.STRING, TokenKind.NUMBER)
            and self._peek(1).kind is TokenKind.COLON
        ):
            entries: list[tuple[object, ast.Expr]] = []
            while True:
                key = self._advance().value
                self._expect(TokenKind.COLON)
                entries.append((key, self._parse_expression()))
                if self._at(TokenKind.COMMA):
                    self._advance()
                else:
                    break
            self._expect(TokenKind.RBRACKET)
            return ast.MapLiteral(entries=entries, line=token.line)
        first = self._parse_expression()
        if self._at(TokenKind.RANGE):
            self._advance()
            high = self._parse_expression()
            self._expect(TokenKind.RBRACKET)
            return ast.RangeLiteral(low=first, high=high, line=token.line)
        items = [first]
        while self._at(TokenKind.COMMA):
            self._advance()
            items.append(self._parse_expression())
        self._expect(TokenKind.RBRACKET)
        return ast.ListLiteral(items=items, line=token.line)

    def _build_gstring(self, token: Token) -> ast.GString:
        parts: list[object] = []
        for part in token.value:  # type: ignore[union-attr]
            if isinstance(part, Interp):
                parts.append(parse_expression(part.source))
            else:
                parts.append(part)
        return ast.GString(parts=parts, line=token.line)


def parse(source: str) -> ast.Module:
    """Parse SmartThings Groovy source into a :class:`repro.lang.ast.Module`."""
    return Parser(tokenize(source)).parse_module()


def parse_expression(source: str) -> ast.Expr:
    """Parse a single expression (used for GString interpolation holes)."""
    parser = Parser(tokenize(source))
    parser._skip_newlines()
    return parser._parse_expression()
