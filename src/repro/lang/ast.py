"""AST node definitions for the SmartThings Groovy subset.

All nodes are plain dataclasses.  Expression nodes carry no type information
(Groovy is dynamically typed); the static analyses in :mod:`repro.analysis`
interpret them symbolically.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Node:
    """Base class for all AST nodes."""

    #: 1-based source line, used by diagnostics and the dependence analysis
    #: (Algorithm 1 labels identifiers with node locations).
    line: int = field(default=0, kw_only=True)


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------
@dataclass
class Expr(Node):
    """Base class for expressions."""


@dataclass
class Literal(Expr):
    """A constant: number, string, boolean, or null (None)."""

    value: object = None


@dataclass
class Name(Expr):
    """An identifier reference."""

    id: str = ""


@dataclass
class GString(Expr):
    """A double-quoted string with interpolation holes.

    ``parts`` alternates raw strings and embedded expressions.
    """

    parts: list[object] = field(default_factory=list)

    def static_text(self) -> str | None:
        """Return the string value if every part is a plain string."""
        if all(isinstance(part, str) for part in self.parts):
            return "".join(self.parts)  # type: ignore[arg-type]
        return None


@dataclass
class ListLiteral(Expr):
    items: list[Expr] = field(default_factory=list)


@dataclass
class MapLiteral(Expr):
    entries: list[tuple[object, Expr]] = field(default_factory=list)


@dataclass
class RangeLiteral(Expr):
    low: Expr | None = None
    high: Expr | None = None


@dataclass
class PropertyAccess(Expr):
    """``obj.name`` (or ``obj?.name`` when ``safe`` is True)."""

    obj: Expr | None = None
    name: str = ""
    safe: bool = False


@dataclass
class Index(Expr):
    """``obj[key]``."""

    obj: Expr | None = None
    key: Expr | None = None


@dataclass
class MethodCall(Expr):
    """``receiver.name(args)`` — ``receiver`` None for bare calls.

    ``name`` is normally a string; for reflective calls (``"$m"()``) it is a
    :class:`GString` expression.  ``named_args`` holds Groovy named arguments
    (``title: "x"``), which SmartThings uses pervasively.  ``closure`` is the
    trailing-closure argument if present.
    """

    receiver: Expr | None = None
    name: object = ""
    args: list[Expr] = field(default_factory=list)
    named_args: dict[str, Expr] = field(default_factory=dict)
    closure: ClosureExpr | None = None
    safe: bool = False

    def is_reflective(self) -> bool:
        """True for dynamic dispatch via a GString method name."""
        return not isinstance(self.name, str)


@dataclass
class ClosureExpr(Expr):
    """``{ params -> body }``; implicit parameter is ``it``."""

    params: list[str] = field(default_factory=list)
    body: Block | None = None


@dataclass
class BinaryOp(Expr):
    op: str = ""
    left: Expr | None = None
    right: Expr | None = None


@dataclass
class UnaryOp(Expr):
    op: str = ""
    operand: Expr | None = None


@dataclass
class Ternary(Expr):
    cond: Expr | None = None
    then: Expr | None = None
    otherwise: Expr | None = None


@dataclass
class Elvis(Expr):
    value: Expr | None = None
    default: Expr | None = None


@dataclass
class NewExpr(Expr):
    """``new Type(args)`` — SmartThings apps use ``new Date(...)`` etc."""

    type_name: str = ""
    args: list[Expr] = field(default_factory=list)


@dataclass
class CastExpr(Expr):
    """``expr as Type`` / ``(Type) expr`` — the type is kept as text only."""

    value: Expr | None = None
    type_name: str = ""


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------
@dataclass
class Stmt(Node):
    """Base class for statements."""


@dataclass
class Block(Node):
    statements: list[Stmt] = field(default_factory=list)


@dataclass
class ExprStmt(Stmt):
    expr: Expr | None = None


@dataclass
class Assign(Stmt):
    """``target = value``; ``is_decl`` marks ``def x = ...`` declarations.

    ``target`` may be a :class:`Name`, :class:`PropertyAccess`
    (``state.counter = ...``), or :class:`Index`.  ``op`` is "=", "+=", "-=".
    """

    target: Expr | None = None
    value: Expr | None = None
    is_decl: bool = False
    op: str = "="


@dataclass
class IfStmt(Stmt):
    cond: Expr | None = None
    then: Block | None = None
    otherwise: Block | IfStmt | None = None


@dataclass
class WhileStmt(Stmt):
    cond: Expr | None = None
    body: Block | None = None


@dataclass
class ForInStmt(Stmt):
    var: str = ""
    iterable: Expr | None = None
    body: Block | None = None


@dataclass
class ReturnStmt(Stmt):
    value: Expr | None = None


@dataclass
class BreakStmt(Stmt):
    pass


@dataclass
class ContinueStmt(Stmt):
    pass


# ----------------------------------------------------------------------
# Declarations
# ----------------------------------------------------------------------
@dataclass
class Param(Node):
    name: str = ""
    default: Expr | None = None


@dataclass
class MethodDecl(Node):
    name: str = ""
    params: list[Param] = field(default_factory=list)
    body: Block | None = None
    is_private: bool = False


@dataclass
class Module(Node):
    """A parsed SmartThings app source file.

    ``statements`` keeps top-level non-method statements (``definition(...)``,
    ``preferences { ... }``) in source order so the IR builder can interpret
    them; ``methods`` maps method names to declarations.
    """

    statements: list[Stmt] = field(default_factory=list)
    methods: dict[str, MethodDecl] = field(default_factory=dict)


# ----------------------------------------------------------------------
# Traversal helpers
# ----------------------------------------------------------------------
def children(node: Node) -> list[Node]:
    """Return the direct AST-node children of ``node`` (for generic walks)."""
    found: list[Node] = []

    def visit(value: object) -> None:
        if isinstance(value, Node):
            found.append(value)
        elif isinstance(value, (list, tuple)):
            for item in value:
                visit(item)
        elif isinstance(value, dict):
            for item in value.values():
                visit(item)

    for name in getattr(node, "__dataclass_fields__", {}):
        if name == "line":
            continue
        visit(getattr(node, name))
    return found


def walk(node: Node):
    """Yield ``node`` and every descendant, preorder."""
    stack = [node]
    while stack:
        current = stack.pop()
        yield current
        stack.extend(reversed(children(current)))


def find_calls(node: Node) -> list[MethodCall]:
    """All :class:`MethodCall` nodes in ``node``'s subtree, preorder."""
    return [n for n in walk(node) if isinstance(n, MethodCall)]
