"""AST pretty-printer: regenerate Groovy-subset source from an AST.

Used by tests to verify parse → print → parse round-trips and by reports to
quote offending code.  Output is normalised (canonical spacing, explicit
parentheses for calls) rather than byte-identical to the input.
"""

from __future__ import annotations

from repro.lang import ast

_INDENT = "    "


def to_source(node: ast.Node, indent: int = 0) -> str:
    """Render any AST node back to source text."""
    if isinstance(node, ast.Module):
        chunks = [to_source(stmt, indent) for stmt in node.statements]
        chunks.extend(to_source(m, indent) for m in node.methods.values())
        return "\n".join(chunks) + "\n"
    if isinstance(node, ast.MethodDecl):
        prefix = "private " if node.is_private else "def "
        params = ", ".join(
            p.name + (f" = {expr(p.default)}" if p.default is not None else "")
            for p in node.params
        )
        header = f"{_INDENT * indent}{prefix}{node.name}({params}) "
        return header + _block(node.body, indent)
    if isinstance(node, ast.Block):
        return _block(node, indent)
    if isinstance(node, ast.Stmt):
        return _stmt(node, indent)
    if isinstance(node, ast.Expr):
        return expr(node)
    raise TypeError(f"cannot print {type(node).__name__}")


def _block(block: ast.Block | None, indent: int) -> str:
    if block is None or not block.statements:
        return "{\n" + _INDENT * indent + "}"
    inner = "\n".join(_stmt(stmt, indent + 1) for stmt in block.statements)
    return "{\n" + inner + "\n" + _INDENT * indent + "}"


def _stmt(stmt: ast.Stmt, indent: int) -> str:
    pad = _INDENT * indent
    if isinstance(stmt, ast.ExprStmt):
        return pad + expr(stmt.expr)
    if isinstance(stmt, ast.Assign):
        prefix = "def " if stmt.is_decl else ""
        if stmt.value is None:
            return f"{pad}{prefix}{expr(stmt.target)}"
        return f"{pad}{prefix}{expr(stmt.target)} {stmt.op} {expr(stmt.value)}"
    if isinstance(stmt, ast.IfStmt):
        text = f"{pad}if ({expr(stmt.cond)}) " + _block(stmt.then, indent)
        if isinstance(stmt.otherwise, ast.IfStmt):
            text += " else " + _stmt(stmt.otherwise, indent).lstrip()
        elif isinstance(stmt.otherwise, ast.Block):
            text += " else " + _block(stmt.otherwise, indent)
        return text
    if isinstance(stmt, ast.WhileStmt):
        return f"{pad}while ({expr(stmt.cond)}) " + _block(stmt.body, indent)
    if isinstance(stmt, ast.ForInStmt):
        return (
            f"{pad}for ({stmt.var} in {expr(stmt.iterable)}) "
            + _block(stmt.body, indent)
        )
    if isinstance(stmt, ast.ReturnStmt):
        if stmt.value is None:
            return pad + "return"
        return f"{pad}return {expr(stmt.value)}"
    if isinstance(stmt, ast.BreakStmt):
        return pad + "break"
    if isinstance(stmt, ast.ContinueStmt):
        return pad + "continue"
    raise TypeError(f"cannot print statement {type(stmt).__name__}")


def _string(text: str) -> str:
    escaped = text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    return f'"{escaped}"'


def expr(node: ast.Expr | None) -> str:
    """Render an expression to source text."""
    if node is None:
        return "null"
    if isinstance(node, ast.Literal):
        if node.value is None:
            return "null"
        if isinstance(node.value, bool):
            return "true" if node.value else "false"
        if isinstance(node.value, str):
            return _string(node.value)
        return repr(node.value)
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.GString):
        chunks = []
        for part in node.parts:
            if isinstance(part, str):
                chunks.append(part.replace("\\", "\\\\").replace('"', '\\"'))
            else:
                chunks.append("${" + expr(part) + "}")
        return '"' + "".join(chunks) + '"'
    if isinstance(node, ast.ListLiteral):
        return "[" + ", ".join(expr(item) for item in node.items) + "]"
    if isinstance(node, ast.MapLiteral):
        if not node.entries:
            return "[:]"
        body = ", ".join(f"{key}: {expr(val)}" for key, val in node.entries)
        return "[" + body + "]"
    if isinstance(node, ast.RangeLiteral):
        return f"[{expr(node.low)}..{expr(node.high)}]"
    if isinstance(node, ast.PropertyAccess):
        dot = "?." if node.safe else "."
        return f"{expr(node.obj)}{dot}{node.name}"
    if isinstance(node, ast.Index):
        return f"{expr(node.obj)}[{expr(node.key)}]"
    if isinstance(node, ast.MethodCall):
        name = expr(node.name) if isinstance(node.name, ast.Expr) else str(node.name)
        parts = [expr(a) for a in node.args]
        parts.extend(f"{k}: {expr(v)}" for k, v in node.named_args.items())
        call = f"{name}({', '.join(parts)})"
        if node.receiver is not None:
            dot = "?." if node.safe else "."
            call = f"{expr(node.receiver)}{dot}{call}"
        if node.closure is not None:
            call += " " + expr(node.closure)
        return call
    if isinstance(node, ast.ClosureExpr):
        header = ""
        if node.params:
            header = ", ".join(node.params) + " -> "
        body = "; ".join(_stmt(stmt, 0) for stmt in (node.body.statements if node.body else []))
        return "{ " + header + body + " }"
    if isinstance(node, ast.BinaryOp):
        return f"({expr(node.left)} {node.op} {expr(node.right)})"
    if isinstance(node, ast.UnaryOp):
        return f"{node.op}({expr(node.operand)})"
    if isinstance(node, ast.Ternary):
        return f"({expr(node.cond)} ? {expr(node.then)} : {expr(node.otherwise)})"
    if isinstance(node, ast.Elvis):
        return f"({expr(node.value)} ?: {expr(node.default)})"
    if isinstance(node, ast.NewExpr):
        return f"new {node.type_name}({', '.join(expr(a) for a in node.args)})"
    if isinstance(node, ast.CastExpr):
        return f"({expr(node.value)} as {node.type_name})"
    raise TypeError(f"cannot print expression {type(node).__name__}")
