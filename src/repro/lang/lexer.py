"""Hand-written lexer for the SmartThings Groovy subset.

Handles line/block comments, single-quoted strings, double-quoted GStrings
with ``$name`` / ``${expr}`` interpolation, triple-quoted strings, numbers,
identifiers/keywords, and the full operator set used by SmartThings apps.

Newlines are significant in Groovy (they terminate statements), so the lexer
emits NEWLINE tokens; the parser collapses them where a statement obviously
continues (e.g. inside parentheses — the lexer already suppresses newlines
inside ``(`` ``)`` and ``[`` ``]`` nesting, mirroring the Groovy grammar).
"""

from __future__ import annotations

from repro.lang.tokens import KEYWORDS, Interp, Token, TokenKind


class LexError(Exception):
    """Raised on malformed input, with position information."""

    def __init__(self, message: str, line: int, col: int) -> None:
        super().__init__(f"{message} at line {line}, column {col}")
        self.message = message
        self.line = line
        self.col = col

    def __reduce__(self):
        # ``args`` holds the formatted string, not the ``__init__``
        # signature, so the default reduce cannot reconstruct the
        # instance — and an exception that fails to unpickle kills the
        # result reader of any process pool shipping it home.
        return (type(self), (self.message, self.line, self.col))


_TWO_CHAR_OPS = {
    "==": TokenKind.EQ,
    "!=": TokenKind.NEQ,
    "<=": TokenKind.LE,
    ">=": TokenKind.GE,
    "&&": TokenKind.AND,
    "||": TokenKind.OR,
    "?:": TokenKind.ELVIS,
    "?.": TokenKind.SAFE_DOT,
    "..": TokenKind.RANGE,
    "->": TokenKind.ARROW,
    "+=": TokenKind.PLUS_ASSIGN,
    "-=": TokenKind.MINUS_ASSIGN,
    "**": TokenKind.POWER,
    "++": TokenKind.INCREMENT,
    "--": TokenKind.DECREMENT,
}

_ONE_CHAR_OPS = {
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "{": TokenKind.LBRACE,
    "}": TokenKind.RBRACE,
    "[": TokenKind.LBRACKET,
    "]": TokenKind.RBRACKET,
    ",": TokenKind.COMMA,
    ".": TokenKind.DOT,
    ":": TokenKind.COLON,
    ";": TokenKind.SEMI,
    "=": TokenKind.ASSIGN,
    "+": TokenKind.PLUS,
    "-": TokenKind.MINUS,
    "*": TokenKind.STAR,
    "/": TokenKind.SLASH,
    "%": TokenKind.PERCENT,
    "<": TokenKind.LT,
    ">": TokenKind.GT,
    "!": TokenKind.NOT,
    "?": TokenKind.QUESTION,
}


class Lexer:
    """Converts SmartThings Groovy source text into a token stream."""

    def __init__(self, source: str) -> None:
        self.source = source
        self.pos = 0
        self.line = 1
        self.col = 1
        self.tokens: list[Token] = []
        # Depth of ( and [ nesting: newlines inside are insignificant.
        self._paren_depth = 0

    # ------------------------------------------------------------------
    # Character helpers
    # ------------------------------------------------------------------
    def _peek(self, offset: int = 0) -> str:
        """Character at ``pos + offset``, or NUL at end of input.

        The NUL sentinel (rather than ``""``) keeps membership tests like
        ``self._peek() in "_$"`` safe: the empty string is a substring of
        everything, which would turn those loops into infinite loops at EOF.
        """
        index = self.pos + offset
        if index < len(self.source):
            return self.source[index]
        return "\x00"

    def _advance(self, count: int = 1) -> str:
        text = self.source[self.pos : self.pos + count]
        for ch in text:
            if ch == "\n":
                self.line += 1
                self.col = 1
            else:
                self.col += 1
        self.pos += count
        return text

    def _emit(self, kind: TokenKind, value: object, line: int, col: int) -> None:
        self.tokens.append(Token(kind, value, line, col))

    def _error(self, message: str) -> LexError:
        return LexError(message, self.line, self.col)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def tokenize(self) -> list[Token]:
        """Lex the whole input and return the token list (ending in EOF)."""
        while self.pos < len(self.source):
            ch = self._peek()
            if ch in " \t\r":
                self._advance()
            elif ch == "\\" and self._peek(1) == "\n":
                self._advance(2)  # explicit line continuation
            elif ch == "\n":
                line, col = self.line, self.col
                self._advance()
                if self._paren_depth == 0:
                    self._emit(TokenKind.NEWLINE, "\n", line, col)
            elif ch == "/" and self._peek(1) == "/":
                self._skip_line_comment()
            elif ch == "/" and self._peek(1) == "*":
                self._skip_block_comment()
            elif ch.isdigit():
                self._lex_number()
            elif ch.isalpha() or ch == "_" or ch == "$":
                self._lex_word()
            elif ch == "'":
                self._lex_single_quoted()
            elif ch == '"':
                self._lex_double_quoted()
            else:
                self._lex_operator()
        self._emit(TokenKind.NEWLINE, "\n", self.line, self.col)
        self._emit(TokenKind.EOF, None, self.line, self.col)
        return self.tokens

    # ------------------------------------------------------------------
    # Comments
    # ------------------------------------------------------------------
    def _skip_line_comment(self) -> None:
        while self.pos < len(self.source) and self._peek() != "\n":
            self._advance()

    def _skip_block_comment(self) -> None:
        start_line, start_col = self.line, self.col
        self._advance(2)
        while self.pos < len(self.source):
            if self._peek() == "*" and self._peek(1) == "/":
                self._advance(2)
                return
            self._advance()
        raise LexError("unterminated block comment", start_line, start_col)

    # ------------------------------------------------------------------
    # Numbers, words
    # ------------------------------------------------------------------
    def _lex_number(self) -> None:
        line, col = self.line, self.col
        start = self.pos
        while self._peek().isdigit():
            self._advance()
        is_float = False
        # Careful: "1..5" is a range, not a float.
        if self._peek() == "." and self._peek(1).isdigit():
            is_float = True
            self._advance()
            while self._peek().isdigit():
                self._advance()
        if self._peek() in "eE" and (
            self._peek(1).isdigit()
            or (self._peek(1) in "+-" and self._peek(2).isdigit())
        ):
            is_float = True
            self._advance()
            if self._peek() in "+-":
                self._advance()
            while self._peek().isdigit():
                self._advance()
        text = self.source[start : self.pos]
        # Groovy numeric suffixes (L, G, F, D) — strip them.
        if self._peek() in "LlGg":
            self._advance()
        elif self._peek() in "FfDd":
            is_float = True
            self._advance()
        value: object = float(text) if is_float else int(text)
        self._emit(TokenKind.NUMBER, value, line, col)

    def _lex_word(self) -> None:
        line, col = self.line, self.col
        start = self.pos
        while self._peek().isalnum() or self._peek() in "_$":
            self._advance()
        word = self.source[start : self.pos]
        kind = TokenKind.KEYWORD if word in KEYWORDS else TokenKind.IDENT
        self._emit(kind, word, line, col)

    # ------------------------------------------------------------------
    # Strings
    # ------------------------------------------------------------------
    _ESCAPES = {
        "n": "\n",
        "t": "\t",
        "r": "\r",
        "\\": "\\",
        "'": "'",
        '"': '"',
        "$": "$",
        "b": "\b",
        "f": "\f",
        "0": "\0",
    }

    def _read_escape(self) -> str:
        self._advance()  # consume backslash
        ch = self._peek()
        if ch == "\x00":
            raise self._error("unterminated escape sequence")
        self._advance()
        return self._ESCAPES.get(ch, ch)

    def _lex_single_quoted(self) -> None:
        line, col = self.line, self.col
        triple = self.source.startswith("'''", self.pos)
        quote = "'''" if triple else "'"
        self._advance(len(quote))
        chunks: list[str] = []
        while True:
            if self.pos >= len(self.source):
                raise LexError("unterminated string literal", line, col)
            if self.source.startswith(quote, self.pos):
                self._advance(len(quote))
                break
            if self._peek() == "\\":
                chunks.append(self._read_escape())
            else:
                chunks.append(self._advance())
        self._emit(TokenKind.STRING, "".join(chunks), line, col)

    def _lex_double_quoted(self) -> None:
        line, col = self.line, self.col
        triple = self.source.startswith('"""', self.pos)
        quote = '"""' if triple else '"'
        self._advance(len(quote))
        parts: list[object] = []
        buffer: list[str] = []

        def flush() -> None:
            if buffer:
                parts.append("".join(buffer))
                buffer.clear()

        while True:
            if self.pos >= len(self.source):
                raise LexError("unterminated string literal", line, col)
            if self.source.startswith(quote, self.pos):
                self._advance(len(quote))
                break
            ch = self._peek()
            if ch == "\\":
                buffer.append(self._read_escape())
            elif ch == "$":
                interp = self._lex_interpolation()
                if interp is None:
                    buffer.append(self._advance())
                else:
                    flush()
                    parts.append(interp)
            else:
                buffer.append(self._advance())
        flush()
        if not parts:
            parts.append("")
        # A GString with no interpolation holes is just a string.
        if len(parts) == 1 and isinstance(parts[0], str):
            self._emit(TokenKind.STRING, parts[0], line, col)
        else:
            self._emit(TokenKind.GSTRING, tuple(parts), line, col)

    def _lex_interpolation(self) -> Interp | None:
        """Lex ``${expr}`` or ``$ident.path`` after a ``$``; None if bare $."""
        if self._peek(1) == "{":
            self._advance(2)  # consume "${"
            depth = 1
            start = self.pos
            while self.pos < len(self.source):
                ch = self._peek()
                if ch == "{":
                    depth += 1
                elif ch == "}":
                    depth -= 1
                    if depth == 0:
                        source = self.source[start : self.pos]
                        self._advance()
                        return Interp(source)
                self._advance()
            raise self._error("unterminated ${...} interpolation")
        nxt = self._peek(1)
        if not (nxt.isalpha() or nxt == "_"):
            return None
        self._advance()  # consume "$"
        start = self.pos
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        # Dotted path: $evt.value
        while (
            self._peek() == "."
            and (self._peek(1).isalpha() or self._peek(1) == "_")
        ):
            self._advance()
            while self._peek().isalnum() or self._peek() == "_":
                self._advance()
        return Interp(self.source[start : self.pos])

    # ------------------------------------------------------------------
    # Operators
    # ------------------------------------------------------------------
    def _lex_operator(self) -> None:
        line, col = self.line, self.col
        three = self.source[self.pos : self.pos + 3]
        if three == "<=>":
            self._advance(3)
            self._emit(TokenKind.SPACESHIP, three, line, col)
            return
        two = self.source[self.pos : self.pos + 2]
        if two in _TWO_CHAR_OPS:
            self._advance(2)
            kind = _TWO_CHAR_OPS[two]
            self._track_nesting(two)
            self._emit(kind, two, line, col)
            return
        one = self._peek()
        if one in _ONE_CHAR_OPS:
            self._advance()
            self._track_nesting(one)
            self._emit(_ONE_CHAR_OPS[one], one, line, col)
            return
        raise self._error(f"unexpected character {one!r}")

    def _track_nesting(self, lexeme: str) -> None:
        if lexeme in "([":
            self._paren_depth += 1
        elif lexeme in ")]":
            self._paren_depth = max(0, self._paren_depth - 1)


def tokenize(source: str) -> list[Token]:
    """Convenience wrapper: lex ``source`` into a token list."""
    return Lexer(source).tokenize()
