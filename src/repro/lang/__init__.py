"""Groovy-subset language frontend for SmartThings apps.

The original Soteria hooks into the Groovy compiler (``ASTTransformation`` /
``GroovyClassVisitor``) to obtain an AST of a SmartThings app.  This package
is the reproduction's substitute: a from-scratch lexer and recursive-descent
parser for the SmartThings subset of Groovy, producing an AST (:mod:`.ast`)
consumed by the IR builder (:mod:`repro.ir.builder`).

The subset covers everything the SmartThings programming guide uses:

* ``definition(...)`` metadata blocks with named arguments,
* ``preferences { section("...") { input ... } }`` permission blocks,
* ``def`` / ``private`` method declarations,
* Groovy *command calls* (``input "x", "capability.switch", title: "T"``),
* closures as trailing call arguments (``section("S") { ... }``),
* GStrings with ``$name`` and ``${expr}`` interpolation,
* reflective calls ``"$name"()``,
* ``if``/``else``, ``while``, ``for``-in, ``return``, assignments,
* elvis ``?:``, ternary, safe navigation ``?.``, lists, maps, ranges.
"""

from repro.lang.lexer import Lexer, LexError, tokenize
from repro.lang.parser import ParseError, Parser, parse
from repro.lang import ast
from repro.lang.pretty import to_source

__all__ = [
    "Lexer",
    "LexError",
    "tokenize",
    "Parser",
    "ParseError",
    "parse",
    "ast",
    "to_source",
]
