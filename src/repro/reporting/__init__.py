"""Output backends: GraphViz DOT, NuSMV SMV text, and console reports."""

from repro.reporting.dot import to_dot, to_dot_trace
from repro.reporting.smv import to_smv
from repro.reporting.report import render_report

__all__ = ["to_dot", "to_dot_trace", "to_smv", "render_report"]
