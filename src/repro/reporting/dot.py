"""GraphViz DOT export of state models (the paper's Fig. 9 visuals)."""

from __future__ import annotations

from repro.model.statemodel import StateModel


def to_dot_trace(model: StateModel, trace: list[str], title: str = "") -> str:
    """Render a counterexample trace (state labels) as a linear DOT chain.

    ``trace`` is the list of state labels from
    :attr:`repro.properties.catalog.Violation.counterexample`; the violating
    final state is drawn filled, matching how the paper's console presents
    NuSMV counter-examples.
    """
    lines = [
        f'digraph "{_escape(title or model.name)}-trace" {{',
        "    rankdir=LR;",
        '    node [shape=box, fontname="Helvetica"];',
    ]
    for index, label in enumerate(trace):
        style = ""
        if index == len(trace) - 1:
            style = ', style=filled, fillcolor="#f4cccc"'
        lines.append(f'    t{index} [label="{_escape(label)}"{style}];')
    for index in range(len(trace) - 1):
        lines.append(f"    t{index} -> t{index + 1};")
    lines.append("}")
    return "\n".join(lines)


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def to_dot(model: StateModel, max_states: int = 400) -> str:
    """Render a state model as DOT text.

    States are labelled ``[water.wet, valve.close]``-style as in the paper;
    edges carry the event and any residual guard.  Models larger than
    ``max_states`` are truncated to the states that participate in
    transitions (keeps the output renderable).
    """
    lines = [
        f'digraph "{_escape(model.name)}" {{',
        "    rankdir=LR;",
        '    node [shape=box, fontname="Helvetica"];',
        '    edge [fontname="Helvetica", fontsize=10];',
    ]
    states = list(model.states)
    if len(states) > max_states:
        used = {t.source for t in model.transitions} | {
            t.target for t in model.transitions
        }
        states = [s for s in states if s in used][:max_states]
    index = {state: i for i, state in enumerate(states)}
    for state, i in index.items():
        label = _escape(model.state_label(state))
        lines.append(f'    s{i} [label="{label}"];')
    for transition in model.transitions:
        src = index.get(transition.source)
        dst = index.get(transition.target)
        if src is None or dst is None:
            continue
        label = _escape(transition.label())
        if transition.app and len(model.apps) > 1:
            label += f"\\n({_escape(transition.app)})"
        lines.append(f'    s{src} -> s{dst} [label="{label}"];')
    lines.append("}")
    return "\n".join(lines)
