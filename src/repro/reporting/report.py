"""Console report rendering (the paper's Fig. 9 output pane)."""

from __future__ import annotations

from repro.soteria import AppAnalysis, EnvironmentAnalysis


def render_report(analysis: AppAnalysis | EnvironmentAnalysis) -> str:
    if isinstance(analysis, AppAnalysis):
        return _render_app(analysis)
    return _render_environment(analysis)


def _render_app(analysis: AppAnalysis) -> str:
    model = analysis.model
    # The symbolic fallback (models past the extractor budget) never
    # materializes states/transitions: report the domain-product estimate
    # and the BDD relation instead of a misleading "0".
    states = f"states: {model.size() or analysis.state_estimate}"
    if analysis.backend == "explicit":
        states += f"  (raw, before reduction: {model.raw_state_count})"
        transitions = f"transitions: {len(model.transitions)}"
    else:
        transitions = "transitions: symbolic (BDD-encoded relation)"
    lines = [
        f"=== Soteria analysis: {analysis.app.name} ===",
        "",
        "--- Intermediate representation ---",
        analysis.ir.render(),
        "",
        f"--- State model ({analysis.backend} backend) ---",
        states,
        transitions,
        f"attributes: {', '.join(a.qualified for a in model.attributes)}",
        "",
        "--- Property verification ---",
        f"checked app-specific properties: "
        f"{', '.join(analysis.checked_properties) or '(none applicable)'}",
    ]
    if analysis.skipped_properties:
        # Checks the chosen backend cannot run (e.g. DET needs the
        # materialized transition set) must be visible, not silent.
        lines.append(
            f"skipped checks ({analysis.backend} backend): "
            f"{', '.join(analysis.skipped_properties)}"
        )
    lines.extend(_violation_lines(analysis.violations))
    return "\n".join(lines)


def _render_environment(analysis: EnvironmentAnalysis) -> str:
    model = analysis.union_model
    # The symbolic backend never materializes states/transitions: report
    # the domain-product estimate and the BDD relation instead.
    states = f"states: {model.size() or analysis.state_estimate}"
    transitions = (
        f"transitions: {len(model.transitions)}"
        if analysis.backend == "explicit"
        else "transitions: symbolic (BDD-encoded relation)"
    )
    lines = [
        f"=== Soteria multi-app analysis: {', '.join(model.apps)} ===",
        "",
        f"--- Union state model (Algorithm 2, {analysis.backend} backend) ---",
        states,
        transitions,
        f"attributes: {', '.join(a.qualified for a in model.attributes)}",
        "",
        "--- Property verification ---",
        f"checked app-specific properties: "
        f"{', '.join(analysis.checked_properties) or '(none applicable)'}",
    ]
    lines.extend(_violation_lines(analysis.violations))
    return "\n".join(lines)


def _violation_lines(violations) -> list[str]:
    if not violations:
        return ["", "result: all checked properties HOLD"]
    lines = ["", f"result: {len(violations)} property violation(s)"]
    for violation in violations:
        marker = " (via reflection — possible false positive)" if violation.via_reflection else ""
        lines.append(f"  VIOLATION {violation.short()}{marker}")
        if violation.counterexample:
            lines.append("    counterexample:")
            for step in violation.counterexample:
                lines.append(f"      {step}")
    return lines
