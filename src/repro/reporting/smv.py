"""NuSMV module export.

Soteria feeds its Kripke structures to NuSMV; the reproduction's own
checkers replace NuSMV for verification, but the ``.smv`` text is still
emitted so results can be cross-checked with a real NuSMV installation.
The encoding is one enumerated SMV variable per device attribute plus an
``event`` variable; the transition relation is a TRANS disjunction.
"""

from __future__ import annotations

import re

from repro.mc import ctl
from repro.model.statemodel import StateModel


def _ident(text: str) -> str:
    """SMV-safe identifier."""
    cleaned = re.sub(r"[^A-Za-z0-9_]", "_", text)
    if not cleaned or cleaned[0].isdigit():
        cleaned = "v_" + cleaned
    return cleaned


def to_smv(
    model: StateModel, specs: list[ctl.Formula] | None = None
) -> str:
    """Render the model as a NuSMV ``MODULE main``."""
    var_names = [_ident(f"{a.device}_{a.attribute}") for a in model.attributes]
    value_sets: list[list[str]] = [
        [_ident(v) for v in attr.domain] for attr in model.attributes
    ]
    events = sorted({t.event.label() for t in model.transitions})
    event_idents = ["none"] + [_ident(e) for e in events]

    lines = ["MODULE main", "VAR"]
    for name, values in zip(var_names, value_sets):
        lines.append(f"    {name} : {{{', '.join(dict.fromkeys(values))}}};")
    lines.append(f"    event : {{{', '.join(dict.fromkeys(event_idents))}}};")
    lines.append("")
    lines.append("INIT event = none")
    lines.append("")

    if model.transitions:
        lines.append("TRANS")
        clauses = []
        for t in model.transitions:
            parts = []
            for name, attr, src_val, dst_val in zip(
                var_names, model.attributes, t.source, t.target
            ):
                parts.append(f"{name} = {_ident(src_val)}")
                parts.append(f"next({name}) = {_ident(dst_val)}")
            parts.append(f"next(event) = {_ident(t.event.label())}")
            clauses.append("(" + " & ".join(parts) + ")")
        # Stutter step keeps the relation total.
        stutter = " & ".join(
            f"next({name}) = {name}" for name in var_names
        )
        if stutter:
            clauses.append(f"({stutter} & next(event) = none)")
        lines.append("    " + "\n  | ".join(clauses))
        lines.append("")

    for spec in specs or []:
        lines.append(f"SPEC {formula_to_smv(spec, model)}")
    return "\n".join(lines) + "\n"


def formula_to_smv(formula: ctl.Formula, model: StateModel) -> str:
    """Translate one of our CTL formulas to NuSMV SPEC syntax."""
    if isinstance(formula, ctl.Bool):
        return "TRUE" if formula.value else "FALSE"
    if isinstance(formula, ctl.Prop):
        return _prop_to_smv(formula.name, model)
    if isinstance(formula, ctl.Not):
        return f"!({formula_to_smv(formula.operand, model)})"
    if isinstance(formula, ctl.And):
        return (
            f"({formula_to_smv(formula.left, model)} & "
            f"{formula_to_smv(formula.right, model)})"
        )
    if isinstance(formula, ctl.Or):
        return (
            f"({formula_to_smv(formula.left, model)} | "
            f"{formula_to_smv(formula.right, model)})"
        )
    if isinstance(formula, ctl.Implies):
        return (
            f"({formula_to_smv(formula.left, model)} -> "
            f"{formula_to_smv(formula.right, model)})"
        )
    if isinstance(formula, ctl.EX):
        return f"EX ({formula_to_smv(formula.operand, model)})"
    if isinstance(formula, ctl.AX):
        return f"AX ({formula_to_smv(formula.operand, model)})"
    if isinstance(formula, ctl.EF):
        return f"EF ({formula_to_smv(formula.operand, model)})"
    if isinstance(formula, ctl.AF):
        return f"AF ({formula_to_smv(formula.operand, model)})"
    if isinstance(formula, ctl.EG):
        return f"EG ({formula_to_smv(formula.operand, model)})"
    if isinstance(formula, ctl.AG):
        return f"AG ({formula_to_smv(formula.operand, model)})"
    if isinstance(formula, ctl.EU):
        return (
            f"E [ {formula_to_smv(formula.left, model)} U "
            f"{formula_to_smv(formula.right, model)} ]"
        )
    if isinstance(formula, ctl.AU):
        return (
            f"A [ {formula_to_smv(formula.left, model)} U "
            f"{formula_to_smv(formula.right, model)} ]"
        )
    raise TypeError(f"unsupported formula {type(formula).__name__}")


def _prop_to_smv(name: str, model: StateModel) -> str:
    if name.startswith("attr:"):
        body = name[len("attr:") :]
        path, _, value = body.partition("=")
        device, _, attribute = path.partition(".")
        return f"{_ident(f'{device}_{attribute}')} = {_ident(value)}"
    if name.startswith("ev:"):
        return f"event = {_ident(name[len('ev:') :])}"
    if name.startswith("evkind:"):
        return "TRUE"  # event kinds are folded into the event variable
    # act:/cmd:/src: propositions label transitions, which this attribute-
    # state encoding cannot express directly; exported specs over them are
    # weakened to TRUE (the native checkers verify the exact formula).
    return "TRUE"
