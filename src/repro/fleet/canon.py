"""Cluster-canonical household forms: isomorphic households, one key.

At fleet scale the cache hit rate on *isomorphic* households is the whole
ballgame: two households whose apps differ only in device-handle and
app names produce the same violation verdict, so they must map onto the
same cache key.  The canonical form has two layers:

**Per-app shape** (:func:`app_shape`) — the app source with comments
stripped, the ``definition`` name/description normalized, and every
device handle replaced by a positional descriptor carrying exactly the
semantics the checker reads off the name: the declaration index, the
platform capability, and the inferred device roles
(:func:`repro.properties.roles.device_roles` — ``hall_light`` *is* a
light to properties like P.12/P.18, so a rename that changes roles must
change the shape, while ``hall_light -> hall_light_rev`` must not).

**Household key** (:func:`household_key`) — the multiset of member
shapes refined over the shared-channel structure: a channel is a device
handle held by two or more members (the sweep engine's device-identity
convention), fingerprinted by the *shapes* of the apps on it and the
descriptor each app holds it under.  Two rounds of color refinement make
the key invariant under member permutation and any role-preserving
renaming of devices and apps, while households wired differently (a
different member pair sharing, a different capability shared) separate.

The mode broadcast channel needs no explicit edge here: mode reads and
writes are part of each member's *source*, hence of its shape, and the
channel itself admits no per-household wiring freedom.

:func:`rename_variant` produces the isomorphic witnesses: a
role-preserving consistent rename of every device handle plus an app
rename — the property tests' (and the profile sampler's) way of
exercising exactly the equivalence the key promises.
"""

from __future__ import annotations

import functools
import hashlib
import re
from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.ir import build_ir
from repro.platform.smartapp import SmartApp
from repro.properties.roles import _ROLE_KEYWORDS, device_roles

_COMMENT = re.compile(r"//[^\n]*|/\*.*?\*/", re.DOTALL)
_APP_NAME = re.compile(r'(\bname\s*:\s*)"(?:[^"\\]|\\.)*"')
_APP_DESCRIPTION = re.compile(r'(\bdescription\s*:\s*)"(?:[^"\\]|\\.)*"')

#: Suffix tags guaranteed role-preserving: purely alphabetic (the role
#: tokenizer splits on non-alphanumerics, so ``_rev`` adds the token
#: ``rev``) and disjoint from every role keyword in
#: :data:`repro.properties.roles._ROLE_KEYWORDS`.
RENAME_TAGS: tuple[str, ...] = ("rev", "alt", "dup", "twin", "iso", "mirror")

_ROLE_WORDS = frozenset(keyword for keyword, _role in _ROLE_KEYWORDS)


def _digest(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class AppShape:
    """Rename-invariant summary of one app.

    ``signature`` identifies the app up to role-preserving renaming;
    ``devices`` maps each *raw* device handle to its canonical
    descriptor (``d<index>:<capability>:<roles>``) so the household key
    can fingerprint shared channels without ever seeing raw names.
    """

    signature: str
    devices: dict[str, str] = field(default_factory=dict)


def _handle_pattern(handles: Sequence[str]) -> re.Pattern[str]:
    alternation = "|".join(
        re.escape(handle) for handle in sorted(handles, key=len, reverse=True)
    )
    return re.compile(rf"\b(?:{alternation})\b")


@functools.lru_cache(maxsize=8192)
def app_shape(source: str) -> AppShape:
    """The canonical shape of one app source.

    Cached on the source text itself: a fleet run sees each distinct
    member source a handful of times (once per template variant), and
    the cache keeps re-samples of the same variant free.
    """
    ir = build_ir(SmartApp.from_source(source, name="canon"))
    roles = device_roles(ir)
    descriptors: dict[str, str] = {}
    for index, perm in enumerate(ir.devices()):
        tags = ",".join(sorted(roles.get(perm.handle, {"generic"})))
        descriptors.setdefault(
            perm.handle, f"d{index}:{perm.capability}:{tags}"
        )
    normalized = _COMMENT.sub("", source)
    if descriptors:
        normalized = _handle_pattern(list(descriptors)).sub(
            lambda match: f"\x00{descriptors[match.group(0)]}\x00", normalized
        )
    normalized = _APP_NAME.sub(r'\1"<app>"', normalized)
    normalized = _APP_DESCRIPTION.sub(r'\1"<description>"', normalized)
    # Collapse whitespace runs so formatting (and the holes comment
    # stripping leaves) never reaches the fingerprint.
    normalized = re.sub(r"\s+", " ", normalized).strip()
    return AppShape(signature=_digest("app-shape:" + normalized), devices=descriptors)


def household_key(shapes: Sequence[AppShape]) -> str:
    """The canonical cache key of one household (a multiset of shapes
    plus their shared-channel wiring).

    Invariant under member permutation by construction (every join is
    sorted); invariant under role-preserving renaming because raw handle
    names never enter a fingerprint — only shapes and descriptors do.
    """
    colors = [shape.signature for shape in shapes]
    endpoints: dict[str, list[tuple[int, str]]] = {}
    for member, shape in enumerate(shapes):
        for handle, descriptor in shape.devices.items():
            endpoints.setdefault(handle, []).append((member, descriptor))
    shared = {h: ends for h, ends in endpoints.items() if len(ends) > 1}
    fingerprints: dict[str, str] = {}
    for _round in range(2):
        for handle, ends in shared.items():
            fingerprints[handle] = _digest(
                "chan:"
                + "|".join(sorted(f"{colors[m]}@{d}" for m, d in ends))
            )
        refined = []
        for member, shape in enumerate(shapes):
            incident = sorted(
                f"{fingerprints[h]}@{d}"
                for h, d in shape.devices.items()
                if h in shared
            )
            refined.append(_digest(colors[member] + "\n" + "\n".join(incident)))
        colors = refined
    return _digest(
        "household:"
        + "\n".join(sorted(colors))
        + "\n#"
        + "\n".join(sorted(fingerprints.values()))
    )


def household_key_for_sources(sources: Sequence[str]) -> str:
    """Convenience: canonical key straight from member sources."""
    return household_key([app_shape(source) for source in sources])


def rename_variant(source: str, tag: str) -> str:
    """An isomorphic renamed copy of ``source``: every device handle
    gets a consistent role-preserving ``_<tag>`` suffix and the app name
    gets the tag appended, so :func:`app_shape` of the variant equals
    the original's and :func:`household_key` collapses households built
    from either.

    ``tag`` must be purely alphabetic and must not be a role keyword —
    a suffix like ``_heat`` would *add* a role and change the verdict,
    which is exactly the rename the canonical form must distinguish.
    """
    if not re.fullmatch(r"[a-z]+", tag):
        raise ValueError(f"rename tag must be lowercase alphabetic, got {tag!r}")
    if tag in _ROLE_WORDS:
        raise ValueError(f"rename tag {tag!r} is a device-role keyword")
    ir = build_ir(SmartApp.from_source(source, name="canon"))
    handles = [perm.handle for perm in ir.devices()]
    renamed = source
    if handles:
        renamed = _handle_pattern(handles).sub(
            lambda match: f"{match.group(0)}_{tag}", renamed
        )
    renamed = _APP_NAME.sub(
        lambda match: match.group(0)[:-1] + f" {tag}\"", renamed, count=1
    )
    return renamed
