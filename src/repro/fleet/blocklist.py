"""The violation blocklist feed: app combinations known to violate.

Modeled on an app store's blocklist distribution (the addons-server
``blocklist`` shape: a versioned feed of entries clients match against),
but keyed on *combinations*: SOTERIA's multi-app violations are
properties of a co-installation, not of any single app, so the unit a
store must gate on is the household-shaped bundle.

Each entry names one violating canonical household: the representative
member ids, the violated property ids, and how much of the screened
fleet it covers — the prevalence signal a store would use to prioritize
enforcement.  The feed is plain JSON, ordered by affected households.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.fleet.telemetry import FleetTelemetry, HouseholdVerdict

#: Feed schema version (bumped on any entry-shape change).
BLOCKLIST_SCHEMA = 1


def combo_label(members: Iterable[str]) -> str:
    """The canonical display form of an app combination (sorted, ``+``)."""
    return "+".join(sorted(members))


def build_blocklist(
    verdicts: Iterable[HouseholdVerdict],
    key_counts: Mapping[str, int],
    telemetry: FleetTelemetry,
    profile_seed: int | None = None,
) -> dict:
    """Assemble the feed from a run's verdicts.

    ``key_counts`` maps canonical keys to sampled-household counts, so
    every entry carries its fleet share; failed verdicts never enter the
    feed (an unverified combination is not a known-bad one).
    """
    total = max(1, telemetry.households)
    entries = []
    for verdict in verdicts:
        if verdict.failed or not verdict.violations:
            continue
        affected = key_counts.get(verdict.canonical_key, 0)
        entries.append(
            {
                "id": verdict.canonical_key[:16],
                "canonical_key": verdict.canonical_key,
                "combination": sorted(verdict.members),
                "properties": sorted(verdict.violated_ids()),
                "households": affected,
                "share": affected / total,
            }
        )
    entries.sort(key=lambda entry: (-entry["households"], entry["id"]))
    feed = {
        "schema": BLOCKLIST_SCHEMA,
        "generator": "soteria fleet",
        "households_screened": telemetry.households,
        "entries": entries,
    }
    if profile_seed is not None:
        feed["seed"] = profile_seed
    return feed
