"""Fleet-scale deployment screening (the ROADMAP's production workload).

The paper analyzes one deployment at a time; the production shape is the
opposite — millions of users each running a *small* household of 3–15
apps, with heavy repetition: most households are popularity-weighted
samples from the same app catalog, differing only in device/app names.
This package turns per-deployment analysis into fleet screening:

* :mod:`repro.fleet.profiles` — seeded, byte-deterministic sampling of
  installation profiles over the 82-app corpus + ``repro.gen``
  synthetics;
* :mod:`repro.fleet.canon` — the cluster-canonical household form
  (capability/role-sorted app multiset + shared-channel shape) that maps
  isomorphic households onto one cache key;
* :mod:`repro.fleet.driver` — the work-stealing screening driver with a
  fleet-level verdict cache tier
  (:class:`repro.corpus.diskcache.FleetCache`);
* :mod:`repro.fleet.telemetry` / :mod:`repro.fleet.blocklist` — the
  aggregate counters and the blocklist feed of violating app
  combinations, exported by ``soteria fleet`` and the service's
  ``/v1/fleet`` + ``/v1/blocklist`` views.

Submodules are imported explicitly (``from repro.fleet.driver import
run_fleet``); this package module stays import-free so the verdict
types in :mod:`repro.fleet.telemetry` can be used by the disk-cache
layer without a cycle through the driver.
"""
