"""Seeded installation-profile sampling for fleet screening.

A *fleet profile* models the app-store reality the ROADMAP's north star
names: millions of households, each installing a small bundle of 3–15
apps, drawn popularity-weighted from a shared catalog.  Two forces make
the workload cacheable:

* **Popularity skew** — installations follow a Zipf law over a finite
  pool of *household templates* (co-installation blueprints), so a few
  templates dominate the stream;
* **Cosmetic divergence** — two users installing the same bundle name
  their devices differently.  Each template materializes in several
  role-preserving :func:`~repro.fleet.canon.rename_variant` skins, so
  the sampled stream is byte-diverse while canonically repetitive —
  exactly the gap between a naive byte-dedup and the canonical form.

Everything is byte-deterministic in ``(profile, count)``: template
construction, corpus popularity ranking, and the sample stream each run
on their own string-seeded ``random.Random`` (CPython seeds strings via
SHA-512, independent of ``PYTHONHASHSEED``), and the synthetic members
come from :mod:`repro.gen`'s deterministic generator.

Templates mix :func:`repro.gen.generator.generate_cluster` synthetics
(device-sharing by construction) with corpus apps drawn from a seeded
popularity ranking; household sizes skew small (most real deployments
are 3–6 apps) with a tail out to ``max_size``.
"""

from __future__ import annotations

import bisect
import hashlib
import random
from collections.abc import Iterator
from dataclasses import dataclass

from repro.corpus.loader import app_ids, load_source
from repro.fleet.canon import RENAME_TAGS, app_shape, household_key, rename_variant
from repro.gen.generator import GenConfig, generate_app, generate_cluster


@dataclass(frozen=True)
class FleetProfile:
    """Knobs of one fleet screening population (all seeded)."""

    seed: int = 0
    #: Distinct household templates (co-installation blueprints) in the
    #: pool; the canonical-distinct household count of a long run.
    templates: int = 150
    #: Rename skins per template (variant 0 is the canonical original):
    #: the byte-distinct/canonical-distinct ratio of the stream.
    variants: int = 4
    #: Probability that a template mixes corpus apps into the bundle.
    corpus_weight: float = 0.25
    #: Household size bounds (apps per household).
    min_size: int = 3
    max_size: int = 15
    #: Zipf exponent of template popularity (1.0 = classic 1/rank).
    zipf: float = 1.05
    #: Violation-injection rate for synthetic members (repro.gen).
    inject_rate: float = 0.4
    #: Per-app and per-cluster abstract-state budgets for the generator;
    #: kept low so fleet unions ride the cheap symbolic path.
    state_budget: int = 256
    cluster_budget: int = 1024

    def key(self) -> tuple:
        return (
            self.seed,
            self.templates,
            self.variants,
            self.corpus_weight,
            self.min_size,
            self.max_size,
            self.zipf,
            self.inject_rate,
            self.state_budget,
            self.cluster_budget,
        )

    def gen_config(self) -> GenConfig:
        return GenConfig(
            inject_rate=self.inject_rate,
            state_budget=self.state_budget,
            cluster_budget=self.cluster_budget,
        )


@dataclass(frozen=True)
class Member:
    """One installed app: content-derived id + source."""

    app_id: str
    source: str


@dataclass(frozen=True)
class Household:
    """One concrete household: a template materialized in one skin."""

    template: int
    variant: int
    members: tuple[Member, ...]

    def sources(self) -> list[str]:
        return [member.source for member in self.members]

    def member_ids(self) -> tuple[str, ...]:
        return tuple(member.app_id for member in self.members)


def _fleet_id(source: str) -> str:
    """Content-derived synthetic app id (``Flt<sha12>``).

    Content-derived per the loader's re-registration contract: a freed
    id can only ever re-bind to the identical source.
    """
    return "Flt" + hashlib.sha256(source.encode("utf-8")).hexdigest()[:12]


def _variant_tag(variant: int) -> str:
    """Role-preserving rename tag of variant ``v >= 1`` (repeats the tag
    when a profile asks for more variants than there are base tags, so
    every variant stays distinct: ``rev``, ..., ``mirror``, ``revrev``)."""
    base = RENAME_TAGS[(variant - 1) % len(RENAME_TAGS)]
    return base * (1 + (variant - 1) // len(RENAME_TAGS))


class TemplatePool:
    """Lazy, memoized materialization of a profile's households.

    Memory stays bounded by the pool, not the stream: at most
    ``templates x variants`` households (a few MB of sources) plus one
    canonical key per pair are ever held, regardless of how many
    households are sampled.
    """

    def __init__(self, profile: FleetProfile):
        self.profile = profile
        self._blueprints: dict[int, Household] = {}
        self._variants: dict[tuple[int, int], Household] = {}
        self._keys: dict[tuple[int, int], str] = {}
        self._ranked: list[str] | None = None
        self._corpus_cum: list[float] | None = None

    # ------------------------------------------------------------------
    def _corpus_ranking(self) -> tuple[list[str], list[float]]:
        """Seeded popularity ranking over the whole 82-app corpus with
        cumulative Zipf weights for sampling."""
        if self._ranked is None:
            rng = random.Random(f"soteria-fleet-popularity:{self.profile.seed}")
            ranked = [
                app_id
                for dataset in ("official", "thirdparty", "maliot")
                for app_id in app_ids(dataset)
            ]
            rng.shuffle(ranked)
            cum: list[float] = []
            total = 0.0
            for rank in range(len(ranked)):
                total += 1.0 / (rank + 1) ** self.profile.zipf
                cum.append(total)
            self._ranked = ranked
            self._corpus_cum = cum
        return self._ranked, self._corpus_cum  # type: ignore[return-value]

    def _pick_corpus(self, rng: random.Random, count: int) -> list[str]:
        ranked, cum = self._corpus_ranking()
        picks: list[str] = []
        seen: set[str] = set()
        while len(picks) < count:
            choice = ranked[bisect.bisect_left(cum, rng.random() * cum[-1])]
            if choice not in seen:
                seen.add(choice)
                picks.append(choice)
        return picks

    # ------------------------------------------------------------------
    def blueprint(self, template: int) -> Household:
        """Variant 0 — the canonical representative of one template."""
        cached = self._blueprints.get(template)
        if cached is not None:
            return cached
        profile = self.profile
        rng = random.Random(
            f"soteria-fleet-template:{profile.seed}:{profile.key()}:t{template}"
        )
        span = profile.max_size - profile.min_size
        size = profile.min_size + min(int(rng.expovariate(0.55)), span)
        corpus_members: list[str] = []
        if rng.random() < profile.corpus_weight and size >= profile.min_size + 1:
            corpus_members = self._pick_corpus(
                rng, rng.randint(1, min(3, size - 2))
            )
        synthetic = size - len(corpus_members)
        config = profile.gen_config()
        if synthetic >= 2:
            generated = generate_cluster(
                f"fleet:{profile.seed}", template, size=synthetic, config=config
            )
        elif synthetic == 1:
            generated = [
                generate_app(
                    f"fleet:{profile.seed}", f"{template}.solo", config=config
                )
            ]
        else:
            generated = []
        members = tuple(
            [Member(_fleet_id(app.source), app.source) for app in generated]
            + [Member(app_id, load_source(app_id)) for app_id in corpus_members]
        )
        household = Household(template=template, variant=0, members=members)
        self._blueprints[template] = household
        return household

    def household(self, template: int, variant: int) -> Household:
        """The template materialized in one rename skin (0 = original)."""
        if variant == 0:
            return self.blueprint(template)
        slot = (template, variant)
        cached = self._variants.get(slot)
        if cached is not None:
            return cached
        tag = _variant_tag(variant)
        members = tuple(
            Member(_fleet_id(renamed), renamed)
            for renamed in (
                rename_variant(member.source, tag)
                for member in self.blueprint(template).members
            )
        )
        household = Household(template=template, variant=variant, members=members)
        self._variants[slot] = household
        return household

    def canonical_key(self, template: int, variant: int) -> str:
        """The canonical household key of one (template, variant) —
        identical across variants of a template by construction."""
        slot = (template, variant)
        key = self._keys.get(slot)
        if key is None:
            household = self.household(template, variant)
            key = household_key(
                [app_shape(member.source) for member in household.members]
            )
            self._keys[slot] = key
        return key


def sample_stream(
    profile: FleetProfile, count: int
) -> Iterator[tuple[int, int, int]]:
    """The sampled fleet: yields ``(index, template, variant)``.

    Byte-deterministic in ``(profile, count)`` — one string-seeded RNG
    drives template choice (Zipf over a seeded popularity permutation of
    the pool) and skin choice (uniform), so every run over the same
    profile screens the identical fleet.
    """
    rng = random.Random(f"soteria-fleet-sample:{profile.seed}:{profile.key()}")
    order = list(range(profile.templates))
    rng.shuffle(order)
    cum: list[float] = []
    total = 0.0
    for rank in range(profile.templates):
        total += 1.0 / (rank + 1) ** profile.zipf
        cum.append(total)
    for index in range(count):
        rank = bisect.bisect_left(cum, rng.random() * total)
        template = order[min(rank, profile.templates - 1)]
        variant = rng.randrange(profile.variants) if profile.variants > 1 else 0
        yield index, template, variant
