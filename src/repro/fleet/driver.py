"""The fleet screening driver: sample, canonicalize, dedup, check.

The run is a three-layer funnel, and each layer is where the throughput
comes from:

1. **Sampling** (:mod:`repro.fleet.profiles`) streams households without
   ever materializing the fleet: per sampled household the driver
   touches only a cached canonical key and a counter.
2. **Canonical dedup** (:mod:`repro.fleet.canon`) maps the byte-diverse
   stream onto few canonical households; only the first sighting of a
   key — after a probe of the fleet disk tier
   (:class:`repro.corpus.diskcache.FleetCache`) — costs a model check.
3. **Sharded checking**: the distinct representatives run through a
   work-stealing process pool (:class:`StealingScheduler` — per-worker
   deques, steal-half on exhaustion, batched submission to amortize
   IPC), each worker reusing warm per-app pipeline stages through the
   process-shared :func:`~repro.pipeline.runner.pipeline_for`.

The check itself is the sweep engine's union outcome
(:func:`repro.corpus.sweep.union_outcome`) under a *low*
explicit/symbolic crossover (:data:`FLEET_MAX_UNION_STATES`): fleet
unions of 3–15 apps routinely estimate in the thousands of states,
where symbolic checking is ~100x cheaper than explicit enumeration —
the budget is a throughput knob, not a soundness one (both paths check
every property).

Memory is bounded by the *pool*, never the fleet: the driver holds one
verdict + one counter per canonical household and one source per
(template, variant) — screening 1M households peaks at the same few
hundred MB as screening 10k.

Synthetic members are registered through the corpus loader under
content-derived ids and the whole run is wrapped in
:func:`~repro.corpus.loader.scoped_registration`, so a fleet screen
leaves the process-wide registry exactly as it found it.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
import time
from collections import deque
from dataclasses import asdict, dataclass, field

from repro.corpus.diskcache import FleetCache, resolve_cache_dir
from repro.corpus.loader import load_app, register_app, scoped_registration
from repro.corpus.sweep import union_outcome
from repro.fleet.blocklist import build_blocklist, combo_label
from repro.fleet.profiles import (
    FleetProfile,
    Household,
    Member,
    TemplatePool,
    sample_stream,
)
from repro.fleet.telemetry import FleetTelemetry, HouseholdVerdict, ViolationRecord
from repro.pipeline.runner import Pipeline, default_pipeline, pipeline_for

#: The fleet explicit/symbolic crossover.  Far below the sweep default
#: (10 000): at fleet scale the explicit checker's product enumeration
#: is the bottleneck, and the symbolic checker handles the same 3–15-app
#: unions in milliseconds.
FLEET_MAX_UNION_STATES = 512


@dataclass(frozen=True)
class FleetOptions:
    """Execution knobs of one screening run (picklable for workers)."""

    jobs: int = 1
    cache_dir: str | None = None
    backend: str = "auto"
    encoding: str = "auto"
    kernel: str = "auto"
    max_union_states: int = FLEET_MAX_UNION_STATES
    #: Households per IPC submission (amortizes queue round trips).
    batch_size: int = 16
    #: Outstanding batches per worker before the parent stops feeding.
    window: int = 2


@dataclass
class FleetResult:
    """Everything a screening run produced."""

    telemetry: FleetTelemetry
    #: canonical key -> verdict, one per canonical household.
    verdicts: dict[str, HouseholdVerdict] = field(default_factory=dict)
    #: canonical key -> sampled household count.
    key_counts: dict[str, int] = field(default_factory=dict)
    blocklist: dict = field(default_factory=dict)

    @property
    def exit_code(self) -> int:
        """Sweep-consistent process status: 1 when any household
        violates, else 3 when any check failed (an incomplete screen is
        not a clean one), else 0."""
        if self.telemetry.violating_households:
            return 1
        return 3 if self.telemetry.failed_households else 0


def check_household(
    household: Household,
    canonical_key: str,
    options: FleetOptions,
    pipeline: Pipeline | None = None,
) -> HouseholdVerdict:
    """Union-check one representative household.

    Members are registered through the corpus loader (content-derived
    ids, so re-binding is always identical) and parsed via
    :func:`~repro.corpus.loader.load_app` — corpus members and repeated
    synthetics share one parse per process.  Scoping the registration is
    the *caller's* job: :func:`run_fleet` and the pool workers wrap
    their whole lifetime, so per-household eviction never thrashes the
    parse caches.
    """
    if pipeline is None:
        pipeline = (
            pipeline_for(options.cache_dir)
            if options.cache_dir
            else default_pipeline()
        )
    members = household.member_ids()
    try:
        apps = []
        for member in household.members:
            register_app(member.app_id, member.source)
            apps.append(load_app(member.app_id))
        analyses = [pipeline.app_analysis(app) for app in apps]
        outcome = union_outcome(
            members,
            analyses,
            options.max_union_states,
            backend=options.backend,
            encoding=options.encoding,
            kernel=options.kernel,
            cache_dir=options.cache_dir,
        )
    except Exception as exc:  # a broken household must not kill the fleet
        return HouseholdVerdict(
            canonical_key=canonical_key,
            members=members,
            error=f"{type(exc).__name__}: {exc}",
        )
    if outcome.failed:
        return HouseholdVerdict(
            canonical_key=canonical_key, members=members, error=outcome.error
        )
    environment = outcome.environment
    violations = tuple(
        ViolationRecord(
            property_id=violation.property_id,
            apps=tuple(violation.apps),
            devices=tuple(violation.devices),
            description=violation.description,
        )
        for violation in environment.violations
    )
    return HouseholdVerdict(
        canonical_key=canonical_key,
        members=members,
        violations=violations,
        backend=environment.backend,
        state_estimate=environment.state_estimate,
    )


# ======================================================================
# Work-stealing process pool
# ======================================================================
def _fleet_worker_main(worker_id, task_queue, result_queue, options_payload) -> None:
    """Worker body: batches of (key, members) in, verdict lists out.

    Each worker owns one process-shared pipeline (warm per-app stages
    across every household it checks) and one registration scope for
    its whole lifetime.  Nothing raised here may cross the queue as an
    exception: per-household failures travel as error verdicts.
    """
    options = FleetOptions(**options_payload)
    pipeline = (
        pipeline_for(options.cache_dir) if options.cache_dir else default_pipeline()
    )
    with scoped_registration():
        while True:
            batch = task_queue.get()
            if batch is None:
                break
            verdicts = []
            for canonical_key, members in batch:
                household = Household(
                    template=-1,
                    variant=-1,
                    members=tuple(
                        Member(app_id, source) for app_id, source in members
                    ),
                )
                verdicts.append(
                    check_household(household, canonical_key, options, pipeline)
                )
            result_queue.put((worker_id, verdicts))


class StealingScheduler:
    """Parent-coordinated work stealing over worker processes.

    Tasks land on per-worker deques; the parent feeds each worker up to
    ``window`` batches of ``batch_size`` households (batched submission
    amortizes the IPC round trip), and when a worker's deque runs dry it
    steals half of the longest deque's tail.  With one result queue the
    parent is the only scheduler state holder — workers just loop
    ``get -> check -> put``.

    Best-effort like the batch driver's pool: any failure to spawn or a
    wedged pool returns the verdicts collected so far and lets the
    caller finish the remainder serially.
    """

    def __init__(self, options: FleetOptions):
        self.options = options
        self._deques: list[deque] = []
        self._inflight: list[int] = []  # outstanding batches per worker
        self._task_queues: list = []

    # ------------------------------------------------------------------
    def _feed(self, worker: int) -> None:
        """Send batches until the worker's window is full (batched
        submission: one queue put per ``batch_size`` households)."""
        while self._inflight[worker] < self.options.window and self._deques[worker]:
            size = min(self.options.batch_size, len(self._deques[worker]))
            batch = [self._deques[worker].popleft() for _ in range(size)]
            self._task_queues[worker].put(batch)
            self._inflight[worker] += 1

    def _steal(self, thief: int) -> None:
        """Steal-half on exhaustion: take the back half of the longest
        deque (the classic Chase–Lev split, parent-coordinated)."""
        victim = max(
            range(len(self._deques)), key=lambda w: len(self._deques[w])
        )
        if victim == thief or len(self._deques[victim]) < 2:
            return
        for _ in range(len(self._deques[victim]) // 2):
            self._deques[thief].append(self._deques[victim].pop())

    # ------------------------------------------------------------------
    def run(self, tasks: list[tuple[str, tuple]]) -> list[HouseholdVerdict]:
        """Check every task; returns the verdicts that completed (the
        caller reconciles anything missing serially)."""
        workers = min(max(2, self.options.jobs), len(tasks))
        context = multiprocessing.get_context()
        collected: list[HouseholdVerdict] = []
        processes = []
        try:
            self._task_queues = [context.Queue() for _ in range(workers)]
            result_queue = context.Queue()
            payload = asdict(self.options)
            for worker in range(workers):
                process = context.Process(
                    target=_fleet_worker_main,
                    args=(
                        worker,
                        self._task_queues[worker],
                        result_queue,
                        payload,
                    ),
                    daemon=True,
                )
                process.start()
                processes.append(process)
        except Exception:
            for process in processes:
                process.terminate()
            return collected

        self._deques = [deque() for _ in range(workers)]
        self._inflight = [0] * workers
        for index, task in enumerate(tasks):
            self._deques[index % workers].append(task)
        for worker in range(workers):
            self._feed(worker)

        stalls = 0
        try:
            while len(collected) < len(tasks):
                try:
                    worker, verdicts = result_queue.get(timeout=30.0)
                except queue_module.Empty:
                    if not any(process.is_alive() for process in processes):
                        break  # pool died; caller finishes serially
                    stalls += 1
                    if stalls > 40:  # 20 minutes without progress
                        break
                    continue
                stalls = 0
                collected.extend(verdicts)
                self._inflight[worker] -= 1
                if not self._deques[worker]:
                    self._steal(worker)
                self._feed(worker)
        finally:
            for task_queue in self._task_queues:
                try:
                    task_queue.put(None)
                except Exception:
                    pass
            for process in processes:
                process.join(timeout=5.0)
                if process.is_alive():
                    process.terminate()
        return collected


# ======================================================================
# The screening run
# ======================================================================
def run_fleet(
    profile: FleetProfile,
    count: int,
    options: FleetOptions | None = None,
) -> FleetResult:
    """Screen ``count`` sampled households; returns telemetry, one
    verdict per canonical household, and the blocklist feed."""
    options = options or FleetOptions()
    started = time.perf_counter()
    telemetry = FleetTelemetry()
    disk_root = resolve_cache_dir(options.cache_dir)
    fleet_cache = FleetCache(disk_root) if disk_root is not None else None
    cache_args = (
        options.backend,
        options.encoding,
        options.kernel,
        options.max_union_states,
    )

    with scoped_registration():
        pool = TemplatePool(profile)
        key_counts: dict[str, int] = {}
        byte_variants: set[tuple[int, int]] = set()
        verdicts: dict[str, HouseholdVerdict] = {}
        pending: dict[str, int] = {}  # canonical key -> representative template

        # Layer 1+2: stream the fleet, counting per canonical key; only
        # first sightings (after a disk probe) become check tasks.
        for _index, template, variant in sample_stream(profile, count):
            telemetry.households += 1
            byte_variants.add((template, variant))
            key = pool.canonical_key(template, variant)
            seen = key_counts.get(key)
            key_counts[key] = (seen or 0) + 1
            if seen is not None:
                continue
            if fleet_cache is not None:
                cached = fleet_cache.get(key, *cache_args)
                if cached is not None:
                    verdicts[key] = cached
                    telemetry.disk_hits += 1
                    continue
            pending[key] = template

        telemetry.byte_distinct = len(byte_variants)
        telemetry.canonical_distinct = len(key_counts)
        telemetry.fresh_checks = len(pending)

        # Layer 3: check each pending key's canonical representative
        # (variant 0 — isomorphic to whatever variant was sampled first,
        # so the blocklist reports combinations in canonical ids).
        tasks = [
            (
                key,
                tuple(
                    (member.app_id, member.source)
                    for member in pool.blueprint(template).members
                ),
            )
            for key, template in pending.items()
        ]
        fresh: list[HouseholdVerdict] = []
        if options.jobs > 1 and len(tasks) > 1:
            fresh = StealingScheduler(options).run(tasks)
        done = {verdict.canonical_key for verdict in fresh}
        if len(done) < len(tasks):
            pipeline = (
                pipeline_for(options.cache_dir)
                if options.cache_dir
                else default_pipeline()
            )
            for key, template in pending.items():
                if key not in done:
                    fresh.append(
                        check_household(
                            pool.blueprint(template), key, options, pipeline
                        )
                    )
        for verdict in fresh:
            verdicts[verdict.canonical_key] = verdict
            if fleet_cache is not None and not verdict.failed:
                try:
                    fleet_cache.put(verdict.canonical_key, verdict, *cache_args)
                except Exception:
                    pass  # best-effort, like the sweep tier

    # Aggregate telemetry + blocklist over the whole fleet.
    for key, sampled in key_counts.items():
        verdict = verdicts.get(key)
        if verdict is None:
            continue
        if verdict.failed:
            telemetry.failed_households += sampled
            telemetry.failed_checks += 1
            continue
        if verdict.violations:
            telemetry.violating_households += sampled
            telemetry.violating_distinct += 1
            label = combo_label(verdict.members)
            telemetry.by_combo[label] = telemetry.by_combo.get(label, 0) + sampled
            for property_id in sorted(verdict.violated_ids()):
                telemetry.by_property[property_id] = (
                    telemetry.by_property.get(property_id, 0) + sampled
                )
    telemetry.elapsed = time.perf_counter() - started
    blocklist = build_blocklist(
        verdicts.values(), key_counts, telemetry, profile_seed=profile.seed
    )
    return FleetResult(
        telemetry=telemetry,
        verdicts=verdicts,
        key_counts=key_counts,
        blocklist=blocklist,
    )
