"""Fleet verdict records and aggregate screening telemetry.

:class:`HouseholdVerdict` is the compact, picklable unit the fleet tier
caches and the worker processes ship back: the canonical key, the
representative member ids, and the violation records — not the full
:class:`~repro.soteria.EnvironmentAnalysis` (a fleet run holds one
verdict per *canonical* household, so verdicts must stay small enough
to keep a million-household screen in bounded memory).

:class:`FleetTelemetry` aggregates the run: household counts at each
dedup layer (sampled / byte-distinct / canonical-distinct), cache hits
by tier, violation counters per property and per app combination, and
the throughput numbers the benchmark gates.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class ViolationRecord:
    """One violation, flattened to plain data for caching/JSON."""

    property_id: str
    apps: tuple[str, ...]
    devices: tuple[str, ...] = ()
    description: str = ""

    def to_json(self) -> dict:
        return {
            "property_id": self.property_id,
            "apps": list(self.apps),
            "devices": list(self.devices),
            "description": self.description,
        }


@dataclass(frozen=True)
class HouseholdVerdict:
    """The screening outcome of one *canonical* household.

    ``members`` are the representative household's app ids (canonical
    variant 0 of the template that first produced the key); renamed
    isomorphic households share this verdict, so the blocklist reports
    combinations in representative terms.
    """

    canonical_key: str
    members: tuple[str, ...]
    violations: tuple[ViolationRecord, ...] = ()
    backend: str | None = None
    state_estimate: int = 0
    error: str | None = None

    @property
    def failed(self) -> bool:
        return self.error is not None

    def violated_ids(self) -> set[str]:
        return {violation.property_id for violation in self.violations}

    def to_json(self) -> dict:
        return {
            "canonical_key": self.canonical_key,
            "members": list(self.members),
            "violations": [violation.to_json() for violation in self.violations],
            "backend": self.backend,
            "state_estimate": self.state_estimate,
            "error": self.error,
        }


@dataclass
class FleetTelemetry:
    """Aggregate counters of one fleet screening run."""

    #: Sampled households (the fleet size of the run).
    households: int = 0
    #: Distinct concrete households sampled (template x rename variant):
    #: what a byte-level dedup would have to check.
    byte_distinct: int = 0
    #: Distinct canonical keys: what was actually checked.
    canonical_distinct: int = 0
    #: Households that needed a fresh union-model check (first sighting
    #: of their canonical key, nothing on disk).
    fresh_checks: int = 0
    #: Canonical keys served from the fleet disk tier.
    disk_hits: int = 0
    #: Sampled households with at least one violation (via their verdict).
    violating_households: int = 0
    #: Canonical households with at least one violation.
    violating_distinct: int = 0
    #: Sampled households whose check failed outright.
    failed_households: int = 0
    #: Canonical households whose check failed outright.
    failed_checks: int = 0
    #: Wall-clock seconds of the whole screen (sampling + checking).
    elapsed: float = 0.0
    #: property id -> sampled households violating it.
    by_property: dict[str, int] = field(default_factory=dict)
    #: sorted app combination ("A+B+C") -> sampled households violating.
    by_combo: dict[str, int] = field(default_factory=dict)

    @property
    def hit_rate(self) -> float:
        """Fraction of sampled households that cost no model check —
        the canonical-dedup cache hit rate the benchmark gates."""
        if not self.households:
            return 1.0
        return 1.0 - self.fresh_checks / self.households

    @property
    def households_per_second(self) -> float:
        if self.elapsed <= 0:
            return 0.0
        return self.households / self.elapsed

    def to_json(self) -> dict:
        return {
            "households": self.households,
            "byte_distinct": self.byte_distinct,
            "canonical_distinct": self.canonical_distinct,
            "fresh_checks": self.fresh_checks,
            "disk_hits": self.disk_hits,
            "hit_rate": self.hit_rate,
            "violating_households": self.violating_households,
            "violating_distinct": self.violating_distinct,
            "failed_households": self.failed_households,
            "failed_checks": self.failed_checks,
            "elapsed_seconds": self.elapsed,
            "households_per_second": self.households_per_second,
            "by_property": dict(sorted(self.by_property.items())),
            "by_combo": dict(
                sorted(self.by_combo.items(), key=lambda kv: (-kv[1], kv[0]))
            ),
        }
