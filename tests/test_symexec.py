"""Symbolic execution: path conditions, actions, merging, reflection."""

import pytest

from repro.analysis.symexec import SymbolicExecutor
from repro.analysis.values import Const, DeviceRead, EventValue, UserInput
from repro.ir import build_ir
from repro.platform import SmartApp


def rules_for(source, handler=None):
    ir = build_ir(SmartApp.from_source(source))
    exe = SymbolicExecutor(ir)
    result = exe.run_all()
    if handler is None:
        return result
    for entry, summaries in result.items():
        if entry.handler == handler:
            return summaries
    raise KeyError(handler)


HEADER = '''
definition(name: "X")
preferences {
    section("S") {
        input "the_switch", "capability.switch", required: true
        input "the_alarm", "capability.alarm", required: true
        input "power_meter", "capability.powerMeter", required: true
        input "thrshld", "number", required: true
    }
}
'''


class TestStraightLine:
    def test_single_action(self):
        summaries = rules_for(HEADER + '''
def installed() { subscribe(the_switch, "switch.on", h) }
def h(evt) { the_alarm.siren() }
''', "h")
        assert len(summaries) == 1
        actions = summaries[0].actions
        assert [(a.device, a.attribute, a.value) for a in actions] == [
            ("the_alarm", "alarm", "siren")
        ]

    def test_action_order_preserved(self):
        summaries = rules_for(HEADER + '''
def installed() { subscribe(the_switch, "switch.on", h) }
def h(evt) { the_alarm.siren()\n the_alarm.off() }
''', "h")
        values = [a.value for a in summaries[0].actions]
        assert values == ["siren", "off"]

    def test_numeric_write_resolves_constant(self):
        summaries = rules_for(HEADER + '''
def installed() { subscribe(the_switch, "switch.on", h) }
def h(evt) { def lvl = 68\n setIt(lvl) }
def setIt(v) { power_meter.poll() }
''', "h")
        assert summaries  # inlined call executes without error


class TestBranching:
    SOURCE = HEADER + '''
def installed() { subscribe(power_meter, "power", h) }
def h(evt) {
    def v = power_meter.currentValue("power")
    if (v > 50) { the_switch.off() }
    if (v < 5) { the_switch.on() }
}
'''

    def test_infeasible_combination_pruned(self):
        summaries = rules_for(self.SOURCE, "h")
        # >50 && <5 must be pruned: 3 paths remain.
        assert len(summaries) == 3

    def test_path_conditions_attached(self):
        summaries = rules_for(self.SOURCE, "h")
        off_paths = [
            s for s in summaries
            if any(a.value == "off" for a in s.actions)
        ]
        assert len(off_paths) == 1
        rendered = " ".join(a.render() for a in off_paths[0].condition)
        assert "power > const:50" in rendered

    def test_esp_merge_of_identical_branches(self):
        summaries = rules_for(HEADER + '''
def installed() { subscribe(power_meter, "power", h) }
def h(evt) {
    def v = power_meter.currentValue("power")
    if (v > 50) { log.debug "hot" } else { log.debug "cool" }
    the_switch.off()
}
''', "h")
        # Both branches have identical effects: ESP merges them into one
        # path with no residual branch condition.
        assert len(summaries) == 1
        assert summaries[0].condition == ()

    def test_elvis_in_guard(self):
        summaries = rules_for(HEADER + '''
def installed() { subscribe(power_meter, "power", h) }
def h(evt) {
    if (power_meter.currentValue("power") < thrshld) { the_switch.on() }
}
''', "h")
        on_paths = [s for s in summaries if s.actions]
        assert isinstance(on_paths[0].condition[0].rhs, UserInput)

    def test_nested_if_else_chain(self):
        summaries = rules_for(HEADER + '''
def installed() { subscribe(the_switch, "switch", h) }
def h(evt) {
    if (evt.value == "on") { the_alarm.siren() }
    else if (evt.value == "off") { the_alarm.off() }
    else { log.debug "?" }
}
''', "h")
        assert len(summaries) == 3

    def test_logical_and_in_condition(self):
        summaries = rules_for(HEADER + '''
def installed() { subscribe(power_meter, "power", h) }
def h(evt) {
    def v = power_meter.currentValue("power")
    if (v > 5 && v < 50) { the_switch.on() }
}
''', "h")
        with_action = [s for s in summaries if s.actions]
        assert len(with_action) == 1
        assert len(with_action[0].condition) == 2


class TestEventValues:
    def test_event_value_comparison(self):
        summaries = rules_for(HEADER + '''
def installed() { subscribe(the_switch, "switch", h) }
def h(evt) { if (evt.value == "on") { the_alarm.siren() } }
''', "h")
        siren = [s for s in summaries if s.actions][0]
        atom = siren.condition[0]
        assert isinstance(atom.lhs, EventValue) or isinstance(atom.rhs, EventValue)

    def test_handler_param_any_name(self):
        summaries = rules_for(HEADER + '''
def installed() { subscribe(the_switch, "switch", onEvent) }
def onEvent(theEvent) {
    if (theEvent.value == "on") { the_alarm.siren() }
}
''', "onEvent")
        assert [s for s in summaries if s.actions]


class TestInterprocedural:
    def test_return_value_flows(self):
        summaries = rules_for(HEADER + '''
def installed() { subscribe(power_meter, "power", h) }
def h(evt) {
    if (get_power() > 50) { the_switch.off() }
}
def get_power() { return power_meter.currentValue("power") }
''', "h")
        off = [s for s in summaries if s.actions][0]
        assert isinstance(off.condition[0].lhs, DeviceRead)

    def test_callee_branches_fork_caller(self):
        summaries = rules_for(HEADER + '''
def installed() { subscribe(power_meter, "power", h) }
def h(evt) { def v = pick()\n if (v == 1) { the_switch.on() } }
def pick() {
    if (power_meter.currentValue("power") > 9) { return 1 }
    return 2
}
''', "h")
        assert len(summaries) >= 2

    def test_recursion_bounded(self):
        summaries = rules_for(HEADER + '''
def installed() { subscribe(the_switch, "switch.on", h) }
def h(evt) { spin() }
def spin() { spin() }
''', "h")
        assert summaries is not None  # terminates

    def test_state_writes_cross_calls(self):
        summaries = rules_for(HEADER + '''
def installed() { subscribe(the_switch, "switch.on", h) }
def h(evt) { bump()\n if (state.count > 3) { the_alarm.siren() } }
def bump() { state.count = state.count + 1 }
''', "h")
        assert any(s.state_writes for s in summaries)


class TestReflection:
    SOURCE = HEADER + '''
def installed() { subscribe(app, appTouch, h) }
def h(evt) { "$state.m"() }
def armIt() { the_alarm.siren() }
def calmIt() { the_alarm.off() }
'''

    def test_all_targets_explored(self):
        summaries = rules_for(self.SOURCE, "h")
        values = {a.value for s in summaries for a in s.actions}
        assert {"siren", "off"} <= values

    def test_reflective_actions_marked(self):
        summaries = rules_for(self.SOURCE, "h")
        for summary in summaries:
            for action in summary.actions:
                assert action.via_reflection
            assert summary.uses_reflection


class TestPlatformInterfaces:
    def test_current_property_read(self):
        summaries = rules_for(HEADER + '''
def installed() { subscribe(power_meter, "power", h) }
def h(evt) { if (power_meter.currentPower > 50) { the_switch.off() } }
''', "h")
        off = [s for s in summaries if s.actions][0]
        assert isinstance(off.condition[0].lhs, DeviceRead)

    def test_mode_set_recorded_as_action(self):
        summaries = rules_for(HEADER + '''
def installed() { subscribe(the_switch, "switch.off", h) }
def h(evt) { setLocationMode("away") }
''', "h")
        action = summaries[0].actions[0]
        assert (action.device, action.attribute, action.value) == (
            "location", "mode", "away",
        )

    def test_send_calls_tracked(self):
        summaries = rules_for(HEADER + '''
def installed() { subscribe(the_switch, "switch.on", h) }
def h(evt) { sendPush("on!") }
''', "h")
        assert summaries[0].sends == ("sendPush",)

    def test_http_closure_executed(self):
        summaries = rules_for(HEADER + '''
def installed() { subscribe(app, appTouch, h) }
def h(evt) {
    httpGet("http://x") { resp -> state.data = resp.status }
    the_switch.on()
}
''', "h")
        assert any(a.value == "on" for s in summaries for a in s.actions)

    def test_loops_bounded(self):
        summaries = rules_for(HEADER + '''
def installed() { subscribe(the_switch, "switch.on", h) }
def h(evt) {
    for (i in [1, 2, 3]) { log.debug "$i" }
    while (state.flag) { state.flag = false }
    the_alarm.siren()
}
''', "h")
        assert summaries
        assert all(
            any(a.value == "siren" for a in s.actions) for s in summaries
        )
