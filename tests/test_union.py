"""Algorithm 2: multi-app union models."""

import pytest

from repro.ir import build_ir
from repro.model import build_union_model, extract_model, union_state_count
from repro.platform import SmartApp


def model_of(source):
    return extract_model(build_ir(SmartApp.from_source(source)))


APP_A = '''
definition(name: "A")
preferences {
    section("S") {
        input "the_switch", "capability.switch", required: true
        input "the_contact", "capability.contactSensor", required: true
    }
}
def installed(){ subscribe(the_contact, "contact.open", h) }
def h(evt){ the_switch.on() }
'''

APP_B = '''
definition(name: "B")
preferences {
    section("S") {
        input "the_switch", "capability.switch", required: true
        input "the_motion", "capability.motionSensor", required: true
    }
}
def installed(){ subscribe(the_motion, "motion.active", h) }
def h(evt){ the_switch.off() }
'''


class TestUnionConstruction:
    def test_shared_device_deduplicated(self):
        union = build_union_model([model_of(APP_A), model_of(APP_B)])
        switch_attrs = [
            a for a in union.attributes if a.qualified == "the_switch.switch"
        ]
        assert len(switch_attrs) == 1

    def test_state_count_is_product_of_dedup_attrs(self):
        union = build_union_model([model_of(APP_A), model_of(APP_B)])
        # switch x contact x motion = 2 * 2 * 2
        assert union.size() == 8

    def test_transitions_labelled_with_app(self):
        union = build_union_model([model_of(APP_A), model_of(APP_B)])
        apps = {t.app for t in union.transitions}
        assert apps == {"A", "B"}

    def test_rule_origins_kept(self):
        union = build_union_model([model_of(APP_A), model_of(APP_B)])
        assert {app for app, _ in union.rule_origins} == {"A", "B"}

    def test_raw_count_multiplies(self):
        a, b = model_of(APP_A), model_of(APP_B)
        union = build_union_model([a, b])
        assert union.raw_state_count == a.raw_state_count * b.raw_state_count

    def test_distinct_handles_stay_separate(self):
        app_c = APP_B.replace("the_switch", "other_switch")
        union = build_union_model([model_of(APP_A), model_of(app_c)])
        names = {a.qualified for a in union.attributes}
        assert {"the_switch.switch", "other_switch.switch"} <= names

    def test_explicit_shared_device_mapping(self):
        app_c = APP_B.replace("the_switch", "other_switch")
        union = build_union_model(
            [model_of(APP_A), model_of(app_c)],
            shared_devices={("B", "other_switch"): "the_switch"},
        )
        names = {a.qualified for a in union.attributes}
        assert "other_switch.switch" not in names

    def test_union_state_count_predicts_built_size(self):
        models = [model_of(APP_A), model_of(APP_B)]
        assert union_state_count(models) == build_union_model(models).size()

    def test_union_state_count_respects_shared_device_mapping(self):
        app_c = APP_B.replace("the_switch", "other_switch")
        models = [model_of(APP_A), model_of(app_c)]
        mapping = {("B", "other_switch"): "the_switch"}
        assert union_state_count(models, mapping) == 8
        assert union_state_count(models) == 16


HEATER = '''
definition(name: "Heater")
preferences {
    section("S") {
        input "the_contact", "capability.contactSensor", required: true
        input "ther", "capability.thermostat", required: true
    }
}
def installed(){ subscribe(the_contact, "contact.open", h) }
def h(evt){ ther.setHeatingSetpoint(68) }
'''

WARMER = '''
definition(name: "Warmer")
preferences {
    section("S") {
        input "the_motion", "capability.motionSensor", required: true
        input "ther", "capability.thermostat", required: true
    }
}
def installed(){ subscribe(the_motion, "motion.active", h) }
def h(evt){ ther.setHeatingSetpoint(75) }
'''


class TestSharedNumericDevice:
    """Two apps sharing a numeric-attribute device: both abstract domains
    must survive the union, or the second app's regions are undecidable."""

    def test_both_apps_regions_in_union_domain(self):
        union = build_union_model([model_of(HEATER), model_of(WARMER)])
        domain = union.numeric_domains[("ther", "heatingSetpoint")]
        kinds = {r.label: r.kind for r in domain.regions}
        assert kinds["heatingSetpoint=68"] == "point"
        assert kinds["heatingSetpoint=75"] == "point"

    def test_merged_domain_covers_symbolic_domain(self):
        union = build_union_model([model_of(HEATER), model_of(WARMER)])
        attr = next(
            a for a in union.attributes if a.qualified == "ther.heatingSetpoint"
        )
        domain = union.numeric_domains[("ther", "heatingSetpoint")]
        # Every symbolic label must resolve to an abstract region.
        assert set(attr.domain) == set(domain.labels())

    def test_second_apps_numeric_write_lands_precisely(self):
        union = build_union_model([model_of(HEATER), model_of(WARMER)])
        warmer_targets = {
            union.value_in(t.target, "ther", "heatingSetpoint")
            for t in union.transitions
            if t.app == "Warmer"
        }
        assert warmer_targets == {"heatingSetpoint=75"}

    def test_numeric_only_in_second_model_kept(self):
        union = build_union_model([model_of(WARMER), model_of(HEATER)])
        domain = union.numeric_domains[("ther", "heatingSetpoint")]
        assert "heatingSetpoint=68" in domain.labels()
        assert "heatingSetpoint=75" in domain.labels()

    def test_merged_domain_raw_size_keeps_larger(self):
        a, b = model_of(HEATER), model_of(WARMER)
        union = build_union_model([a, b])
        merged = union.numeric_domains[("ther", "heatingSetpoint")]
        raws = [
            m.numeric_domains[("ther", "heatingSetpoint")].raw_size for m in (a, b)
        ]
        assert merged.raw_size == max(raws)


class TestCascades:
    """App actions re-stimulate co-installed subscribers (the P.3 chain)."""

    SETTER = '''
definition(name: "Setter")
preferences {
    section("S") {
        input "trigger_sensor", "capability.contactSensor", required: true
        input "shared_switch", "capability.switch", required: true
    }
}
def installed(){ subscribe(trigger_sensor, "contact.open", h) }
def h(evt){ shared_switch.on() }
'''

    REACTOR = '''
definition(name: "Reactor")
preferences {
    section("S") {
        input "shared_switch", "capability.switch", required: true
        input "the_lock", "capability.lock", required: true
    }
}
def installed(){ subscribe(shared_switch, "switch.on", h) }
def h(evt){ the_lock.lock() }
'''

    def test_chain_reachable_in_union(self):
        union = build_union_model([model_of(self.SETTER), model_of(self.REACTOR)])
        # From [contact=closed, switch=on(driven), lock=unlocked] the
        # reactor's switch.on rule must fire even though switch is already
        # on (re-stimulation), locking the door.
        on_states = [
            s
            for s in union.states
            if union.value_in(s, "shared_switch", "switch") == "on"
            and union.value_in(s, "the_lock", "lock") == "unlocked"
        ]
        fired = [
            t
            for t in union.transitions
            if t.app == "Reactor" and t.source in on_states
        ]
        assert fired

    def test_no_restimulation_for_environment_only_values(self):
        # Nobody writes contact values: contact.open still requires a change.
        union = build_union_model([model_of(self.SETTER), model_of(self.REACTOR)])
        for t in union.transitions:
            if t.app == "Setter":
                assert union.value_in(t.source, "trigger_sensor", "contact") == "closed"

    def test_single_app_model_has_no_restimulation(self):
        model = model_of(self.REACTOR)
        for t in model.transitions:
            assert model.value_in(t.source, "shared_switch", "switch") == "off"
