"""Staged pipeline artifacts: keying, the two-layer store, and reuse.

The refactor's contract is *stage-level* reuse: an environment analysis
re-runs zero per-app stages for members that were already analyzed, a
re-check with a different property catalog replays the cached model
artifacts, and a fresh process replays every stage from the disk layer
without a single miss.  Each of those is pinned here by killing the
stage functions and watching the store counters.
"""

import pytest

from repro.corpus.loader import load_app
from repro.pipeline import stages
from repro.pipeline.runner import Pipeline, default_pipeline, pipeline_for
from repro.pipeline.store import (
    PIPELINE_VERSION,
    ArtifactStore,
    artifact_key,
)
from repro.properties.appspecific import APP_SPECIFIC_PROPERTIES
from repro.properties.catalog import PropertyCatalog


def _boom_per_app_stages(monkeypatch):
    """Kill every per-app stage function: cached artifacts or bust."""
    for name in ("run_parse", "run_ir", "run_model", "run_app_check"):
        def boom(*_args, _name=name, **_kwargs):
            raise AssertionError(f"per-app stage {_name} re-ran")

        monkeypatch.setattr(stages, name, boom)


class TestArtifactKey:
    def test_deterministic_and_knob_sensitive(self):
        base = artifact_key("model", ["k1"], {"form": "materialized"})
        assert base == artifact_key("model", ["k1"], {"form": "materialized"})
        assert base != artifact_key("model", ["k1"], {"form": "skeleton"})
        assert base != artifact_key("model", ["k2"], {"form": "materialized"})
        assert base != artifact_key("check", ["k1"], {"form": "materialized"})

    def test_input_order_is_meaning_bearing(self):
        # Union members are positional: (A, B) is not (B, A).
        assert artifact_key("union", ["a", "b"]) != artifact_key("union", ["b", "a"])

    def test_knob_order_is_not(self):
        assert artifact_key("check", ["k"], {"a": 1, "b": 2}) == artifact_key(
            "check", ["k"], {"b": 2, "a": 1}
        )

    def test_version_partitions_the_keyspace(self):
        assert artifact_key("parse", ["d"], version="4") != artifact_key(
            "parse", ["d"], version="5"
        )


class TestArtifactStore:
    def test_memory_round_trip_and_counters(self):
        store = ArtifactStore()  # memory-only
        assert store.get("model", "k") is None
        store.put("model", "k", {"x": 1})
        assert store.get("model", "k") == {"x": 1}
        counts = store.counters()["model"]
        assert counts["misses"] == 1
        assert counts["memory_hits"] == 1
        assert counts["writes"] == 1

    def test_disk_round_trip_across_instances(self, tmp_path):
        ArtifactStore(tmp_path).put("ir", "k", [1, 2, 3])
        fresh = ArtifactStore(tmp_path)
        assert fresh.get("ir", "k") == [1, 2, 3]
        assert fresh.counters()["ir"]["disk_hits"] == 1
        assert fresh.path_for("ir", "k").exists()
        assert fresh.path_for("ir", "k").parent.name == "ir"
        assert fresh.version_dir.name == f"v{PIPELINE_VERSION}"

    def test_memory_only_artifacts_never_touch_disk(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put("check", "k", "volatile", memory_only=True)
        assert store.get("check", "k") == "volatile"
        assert not store.contains_disk("check", "k")
        assert ArtifactStore(tmp_path).get("check", "k") is None

    def test_corrupt_entry_is_a_deleted_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put("model", "k", "good")
        path = store.path_for("model", "k")
        path.write_bytes(b"not a pickle")
        fresh = ArtifactStore(tmp_path)
        assert fresh.get("model", "k") is None
        assert not path.exists()  # cleaned up for the next write

    def test_mistyped_entry_is_a_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put("model", "k", "a string")
        fresh = ArtifactStore(tmp_path)
        assert fresh.get("model", "k", expected=dict) is None

    def test_memory_layer_is_a_bounded_lru(self):
        store = ArtifactStore(max_memory_entries=2)
        store.put("parse", "a", 1)
        store.put("parse", "b", 2)
        assert store.get("parse", "a") == 1  # touch: a is now most recent
        store.put("parse", "c", 3)           # evicts b
        assert store.get("parse", "b") is None
        assert store.get("parse", "a") == 1
        assert store.get("parse", "c") == 3

    def test_clear_disk_and_prune(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put("model", "k", 1)
        stale = ArtifactStore(tmp_path, version="0")
        stale.put("model", "k", 1)
        assert store.prune() == 1          # reclaims v0, keeps current
        assert store.get("model", "k") == 1
        assert store.clear_disk() == 1
        assert ArtifactStore(tmp_path).get("model", "k") is None

    def test_cache_info_shape(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put("model", "k", {"x": 1})
        store.get("model", "k")
        store.get("model", "missing")
        info = store.cache_info()
        assert info["root"] == str(tmp_path)
        assert info["version"] == PIPELINE_VERSION
        stats = info["stages"]["model"]
        assert stats["entries"] == 1
        assert stats["bytes"] > 0
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["writes"] == 1


class TestStageReuse:
    def test_environment_reruns_zero_per_app_stages(self, monkeypatch):
        # The acceptance criterion of the refactor: after analyzing an
        # app, an environment analysis containing it replays the member's
        # parse/ir/model/check artifacts — only union-level stages run.
        pipeline = Pipeline()
        members = [load_app("App1"), load_app("App15")]
        for app in members:
            pipeline.app_analysis(app)
        _boom_per_app_stages(monkeypatch)
        env = pipeline.environment_analysis(list(members))
        assert "S.1" in env.violated_ids()  # Appendix C ground truth

    def test_recheck_with_new_catalog_reuses_model_stage(self, monkeypatch):
        # Changing the property catalog changes only the check key: the
        # expensive parse/ir/model/kripke artifacts replay from the store.
        pipeline = Pipeline()
        app = load_app("App1")
        baseline = pipeline.app_analysis(app)
        assert "P.2" in baseline.violated_ids()
        for name in ("run_parse", "run_ir", "run_model", "run_kripke"):
            def boom(*_args, _name=name, **_kwargs):
                raise AssertionError(f"model-side stage {_name} re-ran")

            monkeypatch.setattr(stages, name, boom)
        trimmed = PropertyCatalog(
            specs=[s for s in APP_SPECIFIC_PROPERTIES if s.id != "P.2"]
        )
        rerun = pipeline.app_analysis(app, catalog=trimmed)
        assert "P.2" not in rerun.checked_properties
        assert "P.2" not in rerun.violated_ids()

    def test_fresh_process_replays_everything_from_disk(self, tmp_path):
        Pipeline(ArtifactStore(tmp_path)).app_analysis(load_app("O1"))

        warm_store = ArtifactStore(tmp_path)  # simulates a new process
        warm = Pipeline(warm_store).app_analysis(load_app("O1"))
        assert warm.violated_ids() == set()  # O1 is clean (Table 2)
        counters = warm_store.counters()
        assert sum(c["misses"] for c in counters.values()) == 0
        assert sum(c["disk_hits"] for c in counters.values()) >= 3  # ir/model/…

    def test_identical_rerun_is_all_memory_hits(self):
        store = ArtifactStore()
        pipeline = Pipeline(store)
        app = load_app("TP3")
        first = pipeline.app_analysis(app)
        before = store.counters()
        second = pipeline.app_analysis(app)
        after = store.counters()
        assert second.violated_ids() == first.violated_ids() == {"S.4"}
        for stage, counts in after.items():
            assert counts["misses"] == before.get(stage, counts)["misses"], stage

    def test_backend_knob_misses_only_the_model_side(self):
        # Forcing the symbolic backend on an already-analyzed app reuses
        # parse and ir; only the (skeleton) model and its check are new.
        store = ArtifactStore()
        pipeline = Pipeline(store)
        app = load_app("App1")
        explicit = pipeline.app_analysis(app)
        before = store.counters()
        symbolic = pipeline.app_analysis(app, backend="symbolic")
        after = store.counters()
        assert symbolic.backend == "symbolic"
        assert symbolic.violated_ids() == explicit.violated_ids()
        assert after["ir"]["misses"] == before["ir"]["misses"]
        assert after["model"]["misses"] == before["model"]["misses"] + 1
        assert after["check"]["misses"] == before["check"]["misses"] + 1

    def test_explicit_budget_raises_even_on_warm_union_cache(self):
        # The union for these members is cached by the first call; a
        # later explicit run under a tighter budget must still raise the
        # cold path's StateExplosionError, never serve the cached union.
        from repro.model.extractor import StateExplosionError

        pipeline = Pipeline()
        members = [load_app("App1"), load_app("App15")]
        env = pipeline.environment_analysis(list(members))
        assert env.backend == "explicit"
        with pytest.raises(StateExplosionError):
            pipeline.environment_analysis(
                list(members), backend="explicit", max_union_states=1
            )

    def test_member_db_provenance_keys_union_artifacts(self, tmp_path):
        # An analysis records the capability-db token it ran under, so a
        # member precomputed with a custom database never aliases the
        # default database's model/union keys — and union artifacts
        # derived from it stay out of the disk layer.
        import copy

        from repro.platform.capabilities import default_database

        store = ArtifactStore(tmp_path)
        pipeline = Pipeline(store)
        custom = copy.deepcopy(default_database())
        member = pipeline.app_analysis(load_app("App1"), db=custom)
        default_member = pipeline.app_analysis(load_app("App1"))
        assert member.db_token != "default"
        assert default_member.db_token == "default"
        assert pipeline._model_key_for(member) != pipeline._model_key_for(
            default_member
        )
        pipeline.environment_analysis([member, load_app("App15")])
        assert store.entries("union") == []

    def test_custom_db_stays_out_of_the_disk_layer(self, tmp_path):
        # Keys derived from a process-local capability database mean
        # nothing to another process: they must never be persisted.
        import copy

        from repro.platform.capabilities import default_database

        store = ArtifactStore(tmp_path)
        custom = copy.deepcopy(default_database())
        Pipeline(store).app_analysis(load_app("O1"), db=custom)
        assert store.entries("ir") == []
        assert store.entries("model") == []
        assert store.entries("check") == []


class TestSharedPipelines:
    def test_default_pipeline_is_memory_only_and_shared(self):
        assert default_pipeline() is default_pipeline()
        assert default_pipeline().store.root is None

    def test_pipeline_per_cache_root(self, tmp_path):
        a = pipeline_for(tmp_path / "a")
        b = pipeline_for(tmp_path / "b")
        assert a is not b
        assert a is pipeline_for(tmp_path / "a")
        assert a.store.root == tmp_path / "a"

    def test_facade_reuse_without_reanalysis(self, monkeypatch):
        # repro.analyze_app / analyze_environment are thin wrappers over
        # the shared memory-only pipeline: analyses made through one are
        # visible to the other.
        from repro.soteria import analyze_app, analyze_environment

        members = [load_app("App1"), load_app("App15")]
        for app in members:
            analyze_app(app)
        _boom_per_app_stages(monkeypatch)
        env = analyze_environment(list(members))
        assert "S.1" in env.violated_ids()
