"""Algorithm 1: backward dependence for property abstraction."""

import pytest

from repro.analysis.dependence import DependenceAnalysis
from repro.ir import build_ir
from repro.platform import SmartApp

FIG6 = '''
definition(name: "Fig6")
preferences {
    section("C") {
        input "ther", "capability.thermostat", required: true
    }
}
def installed() {
    subscribe(location, "mode", modeChangeHandler)
}
def modeChangeHandler(evt) {
    def temp = 68
    setTemp(temp)
}
def setTemp(t) {
    ther.setHeatingSetpoint(t)
}
'''


@pytest.fixture(scope="module")
def fig6():
    ir = build_ir(SmartApp.from_source(FIG6))
    return DependenceAnalysis(ir)


class TestFig6Example:
    def test_numeric_action_call_found(self, fig6):
        calls = fig6.numeric_action_calls()
        assert len(calls) == 1
        _node, device, attribute, _arg = calls[0]
        assert (device, attribute) == ("ther", "heatingSetpoint")

    def test_constant_source_recovered(self, fig6):
        result = fig6.analyze("ther", "heatingSetpoint")
        assert result.constant_values() == {68}

    def test_dependence_chain_recorded(self, fig6):
        result = fig6.analyze("ther", "heatingSetpoint")
        # (6:t) depends on (3:temp): at least one inter-procedural edge.
        assert result.dep

    def test_paths_from_sources(self, fig6):
        result = fig6.analyze("ther", "heatingSetpoint")
        paths = result.paths_to_sources()
        assert paths  # the paper's path (3) -> (2) -> (1)


class TestUserInputSource:
    SOURCE = '''
definition(name: "U")
preferences {
    section("C") {
        input "dimmer", "capability.switchLevel", required: true
        input "user_level", "number", title: "Level", required: true
    }
}
def installed() { subscribe(app, appTouch, h) }
def h(evt) {
    def lvl = user_level
    dimmer.setLevel(lvl)
}
'''

    def test_user_input_traced(self):
        ir = build_ir(SmartApp.from_source(self.SOURCE))
        analysis = DependenceAnalysis(ir)
        result = analysis.analyze("dimmer", "level")
        assert result.user_inputs() == {"user_level"}


class TestArithmeticPropagation:
    SOURCE = '''
definition(name: "A")
preferences {
    section("C") {
        input "dimmer", "capability.switchLevel", required: true
        input "base", "number", required: true
    }
}
def installed() { subscribe(app, appTouch, h) }
def h(evt) {
    def x = base + 10
    dimmer.setLevel(x)
}
'''

    def test_footnote_arith_follows_single_identifier(self):
        # Paper footnote: "the user input is stored in y, followed by
        # x = y + 10, followed by a device attribute change using x".
        ir = build_ir(SmartApp.from_source(self.SOURCE))
        result = DependenceAnalysis(ir).analyze("dimmer", "level")
        assert result.user_inputs() == {"base"}


class TestDirectConstant:
    SOURCE = '''
definition(name: "D")
preferences {
    section("C") { input "ther", "capability.thermostat", required: true }
}
def installed() { subscribe(app, appTouch, h) }
def h(evt) { ther.setCoolingSetpoint(76) }
'''

    def test_literal_argument_is_source(self):
        ir = build_ir(SmartApp.from_source(self.SOURCE))
        result = DependenceAnalysis(ir).analyze("ther", "coolingSetpoint")
        assert result.constant_values() == {76}


class TestReturnValueResolution:
    SOURCE = '''
definition(name: "R")
preferences {
    section("C") {
        input "ther", "capability.thermostat", required: true
        input "pref_temp", "number", required: true
    }
}
def installed() { subscribe(app, appTouch, h) }
def h(evt) {
    def goal = lookup()
    ther.setHeatingSetpoint(goal)
}
def lookup() {
    return pref_temp
}
'''

    def test_callee_return_traced(self):
        ir = build_ir(SmartApp.from_source(self.SOURCE))
        result = DependenceAnalysis(ir).analyze("ther", "heatingSetpoint")
        assert result.user_inputs() == {"pref_temp"}


def test_analyze_all_covers_every_written_numeric_attribute():
    ir = build_ir(SmartApp.from_source(FIG6))
    results = DependenceAnalysis(ir).analyze_all()
    assert set(results) == {("ther", "heatingSetpoint")}
