"""Lexer tests: tokens, strings, GStrings, comments, operators."""

import pytest

from repro.lang.lexer import LexError, tokenize
from repro.lang.tokens import Interp, TokenKind


def kinds(source):
    return [t.kind for t in tokenize(source) if t.kind is not TokenKind.NEWLINE][:-1]


def values(source):
    return [
        t.value
        for t in tokenize(source)
        if t.kind not in (TokenKind.NEWLINE, TokenKind.EOF)
    ]


class TestBasicTokens:
    def test_empty_input_yields_eof(self):
        tokens = tokenize("")
        assert tokens[-1].kind is TokenKind.EOF

    def test_identifier(self):
        assert kinds("foo") == [TokenKind.IDENT]

    def test_identifier_with_underscore_and_digits(self):
        assert values("the_switch2") == ["the_switch2"]

    def test_keyword_def(self):
        assert kinds("def") == [TokenKind.KEYWORD]

    def test_keywords_true_false_null(self):
        assert kinds("true false null") == [TokenKind.KEYWORD] * 3

    def test_integer(self):
        tokens = tokenize("42")
        assert tokens[0].kind is TokenKind.NUMBER
        assert tokens[0].value == 42

    def test_float(self):
        assert tokenize("3.5")[0].value == 3.5

    def test_float_exponent(self):
        assert tokenize("1e3")[0].value == 1000.0

    def test_long_suffix_stripped(self):
        assert tokenize("10L")[0].value == 10

    def test_number_then_range_not_float(self):
        ks = kinds("1..5")
        assert ks == [TokenKind.NUMBER, TokenKind.RANGE, TokenKind.NUMBER]

    def test_line_and_column_tracking(self):
        tokens = tokenize("a\n  b")
        ident_b = [t for t in tokens if t.value == "b"][0]
        assert (ident_b.line, ident_b.col) == (2, 3)


class TestStrings:
    def test_single_quoted(self):
        token = tokenize("'hello'")[0]
        assert token.kind is TokenKind.STRING
        assert token.value == "hello"

    def test_double_quoted_plain_is_string(self):
        token = tokenize('"hello"')[0]
        assert token.kind is TokenKind.STRING
        assert token.value == "hello"

    def test_escapes(self):
        assert tokenize(r"'a\nb'")[0].value == "a\nb"

    def test_escaped_quote(self):
        assert tokenize(r'"say \"hi\""')[0].value == 'say "hi"'

    def test_escaped_dollar_stays_literal(self):
        assert tokenize(r'"\$100"')[0].value == "$100"

    def test_unterminated_string_raises(self):
        with pytest.raises(LexError):
            tokenize("'oops")

    def test_triple_single_quoted(self):
        assert tokenize("'''a\nb'''")[0].value == "a\nb"

    def test_gstring_simple_interpolation(self):
        token = tokenize('"value: $evt"')[0]
        assert token.kind is TokenKind.GSTRING
        assert token.value == ("value: ", Interp("evt"))

    def test_gstring_dotted_interpolation(self):
        token = tokenize('"$evt.value ok"')[0]
        assert token.value == (Interp("evt.value"), " ok")

    def test_gstring_braced_interpolation(self):
        token = tokenize('"${ x + 1 }"')[0]
        assert token.value == (Interp(" x + 1 "),)

    def test_gstring_nested_braces(self):
        token = tokenize('"${ m[{it}] }"')[0]
        assert isinstance(token.value[0], Interp)

    def test_bare_dollar_not_interpolation(self):
        token = tokenize('"100$"')[0]
        assert token.kind is TokenKind.STRING
        assert token.value == "100$"

    def test_unterminated_interpolation_raises(self):
        with pytest.raises(LexError):
            tokenize('"${x"')


class TestCommentsAndOperators:
    def test_line_comment_skipped(self):
        assert values("a // comment\nb") == ["a", "b"]

    def test_block_comment_skipped(self):
        assert values("a /* x\ny */ b") == ["a", "b"]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(LexError):
            tokenize("/* oops")

    def test_two_char_operators(self):
        ks = kinds("== != <= >= && || ?: ?. -> ..")
        assert ks == [
            TokenKind.EQ,
            TokenKind.NEQ,
            TokenKind.LE,
            TokenKind.GE,
            TokenKind.AND,
            TokenKind.OR,
            TokenKind.ELVIS,
            TokenKind.SAFE_DOT,
            TokenKind.ARROW,
            TokenKind.RANGE,
        ]

    def test_spaceship(self):
        assert kinds("a <=> b")[1] is TokenKind.SPACESHIP

    def test_increment_decrement(self):
        assert kinds("i++ j--") == [
            TokenKind.IDENT,
            TokenKind.INCREMENT,
            TokenKind.IDENT,
            TokenKind.DECREMENT,
        ]

    def test_unexpected_character_raises(self):
        with pytest.raises(LexError):
            tokenize("a @ b")


class TestNewlineHandling:
    def test_newline_token_emitted(self):
        tokens = tokenize("a\nb")
        assert TokenKind.NEWLINE in [t.kind for t in tokens]

    def test_newlines_suppressed_inside_parens(self):
        tokens = tokenize("f(\n  a,\n  b\n)")
        inner = [t.kind for t in tokens]
        # the only NEWLINE is the synthetic trailing one
        assert inner.count(TokenKind.NEWLINE) == 1

    def test_newlines_suppressed_inside_brackets(self):
        tokens = tokenize("[1,\n2]")
        assert [t.kind for t in tokens].count(TokenKind.NEWLINE) == 1

    def test_newlines_kept_inside_braces(self):
        tokens = tokenize("{\na\n}")
        assert [t.kind for t in tokens].count(TokenKind.NEWLINE) >= 3

    def test_backslash_continuation(self):
        assert values("a \\\n b") == ["a", "b"]

    def test_eof_word_terminates(self):
        # regression: "" in "_$" is True — EOF must not loop forever
        assert values("abc") == ["abc"]


def test_lex_error_survives_pickling():
    # A LexError raised in a batch/service worker process must
    # reconstruct in the parent; a failed unpickle bricks the pool.
    import pickle

    with pytest.raises(LexError) as caught:
        tokenize("'oops")
    clone = pickle.loads(pickle.dumps(caught.value))
    assert isinstance(clone, LexError)
    assert str(clone) == str(caught.value)
    assert (clone.line, clone.col) == (caught.value.line, caught.value.col)
