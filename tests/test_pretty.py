"""Pretty-printer round-trip tests."""

import dataclasses

import pytest

from repro.corpus.loader import app_ids, load_source
from repro.lang import ast, parse, to_source
from repro.lang.pretty import expr as render_expr
from repro.lang.parser import parse_expression

ROUND_TRIP_SOURCES = [
    "def f() { x = 1 }",
    "def f(evt) { if (evt.value == \"on\") { sw.on() } else { sw.off() } }",
    "def f() { while (x < 3) { x += 1 } }",
    "def f() { for (v in items) { log.debug \"$v\" } }",
    "def f() { return dev.currentValue(\"power\") }",
    "def g() { \"$name\"() }",
    "def g() { httpGet(\"http://u\") { resp -> x = resp.status } }",
    'definition(name: "App", category: "Safety")',
    'preferences { section("S") { input "a", "capability.switch", required: true } }',
    "def f() { def m = [a: 1, b: \"two\"] }",
    "def f() { def l = [1, 2, 3] }",
    "def f() { x = a ? b : c }",
    "def f() { x = y ?: 10 }",
    "def f() { state.counter = state.counter + 1 }",
]


@pytest.mark.parametrize("source", ROUND_TRIP_SOURCES)
def test_round_trip_reparses(source):
    module = parse(source)
    regenerated = to_source(module)
    module2 = parse(regenerated)
    assert sorted(module2.methods) == sorted(module.methods)
    assert len(module2.statements) == len(module.statements)


@pytest.mark.parametrize("source", ROUND_TRIP_SOURCES)
def test_round_trip_is_fixed_point(source):
    once = to_source(parse(source))
    twice = to_source(parse(once))
    assert once == twice


@pytest.mark.parametrize(
    "text,expected",
    [
        ("1 + 2", "(1 + 2)"),
        ("!x", "!(x)"),
        ("a.b", "a.b"),
        ("f(1, k: 2)", "f(1, k: 2)"),
        ("[:]", "[:]"),
        ("null", "null"),
        ("true", "true"),
    ],
)
def test_expression_rendering(text, expected):
    assert render_expr(parse_expression(text)) == expected


def test_string_escaping():
    rendered = render_expr(parse_expression("'say \"hi\"'"))
    assert rendered == '"say \\"hi\\""'


# ----------------------------------------------------------------------
# Whole-corpus round-trip: the scenario generator emits apps through the
# pretty-printer, so print -> parse must preserve every construct the
# corpus (and therefore the generator's grammar) uses.
# ----------------------------------------------------------------------
ALL_CORPUS_IDS = [
    app_id
    for dataset in ("official", "thirdparty", "maliot")
    for app_id in app_ids(dataset)
]


def _strip_lines(node):
    """Structural copy with every source-line annotation zeroed."""
    if isinstance(node, ast.Node):
        changes = {
            field.name: _strip_lines(getattr(node, field.name))
            for field in dataclasses.fields(node)
        }
        changes["line"] = 0
        return dataclasses.replace(node, **changes)
    if isinstance(node, list):
        return [_strip_lines(item) for item in node]
    if isinstance(node, tuple):
        return tuple(_strip_lines(item) for item in node)
    if isinstance(node, dict):
        return {key: _strip_lines(value) for key, value in node.items()}
    return node


@pytest.mark.parametrize("app_id", ALL_CORPUS_IDS)
def test_corpus_app_round_trips_to_equivalent_ast(app_id):
    module = parse(load_source(app_id))
    reparsed = parse(to_source(module))
    assert _strip_lines(reparsed) == _strip_lines(module)


@pytest.mark.parametrize("app_id", ALL_CORPUS_IDS)
def test_corpus_app_pretty_is_fixed_point(app_id):
    once = to_source(parse(load_source(app_id)))
    assert to_source(parse(once)) == once
