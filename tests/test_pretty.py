"""Pretty-printer round-trip tests."""

import pytest

from repro.lang import parse, to_source
from repro.lang.pretty import expr as render_expr
from repro.lang.parser import parse_expression

ROUND_TRIP_SOURCES = [
    "def f() { x = 1 }",
    "def f(evt) { if (evt.value == \"on\") { sw.on() } else { sw.off() } }",
    "def f() { while (x < 3) { x += 1 } }",
    "def f() { for (v in items) { log.debug \"$v\" } }",
    "def f() { return dev.currentValue(\"power\") }",
    "def g() { \"$name\"() }",
    "def g() { httpGet(\"http://u\") { resp -> x = resp.status } }",
    'definition(name: "App", category: "Safety")',
    'preferences { section("S") { input "a", "capability.switch", required: true } }',
    "def f() { def m = [a: 1, b: \"two\"] }",
    "def f() { def l = [1, 2, 3] }",
    "def f() { x = a ? b : c }",
    "def f() { x = y ?: 10 }",
    "def f() { state.counter = state.counter + 1 }",
]


@pytest.mark.parametrize("source", ROUND_TRIP_SOURCES)
def test_round_trip_reparses(source):
    module = parse(source)
    regenerated = to_source(module)
    module2 = parse(regenerated)
    assert sorted(module2.methods) == sorted(module.methods)
    assert len(module2.statements) == len(module.statements)


@pytest.mark.parametrize("source", ROUND_TRIP_SOURCES)
def test_round_trip_is_fixed_point(source):
    once = to_source(parse(source))
    twice = to_source(parse(once))
    assert once == twice


@pytest.mark.parametrize(
    "text,expected",
    [
        ("1 + 2", "(1 + 2)"),
        ("!x", "!(x)"),
        ("a.b", "a.b"),
        ("f(1, k: 2)", "f(1, k: 2)"),
        ("[:]", "[:]"),
        ("null", "null"),
        ("true", "true"),
    ],
)
def test_expression_rendering(text, expected):
    assert render_expr(parse_expression(text)) == expected


def test_string_escaping():
    rendered = render_expr(parse_expression("'say \"hi\"'"))
    assert rendered == '"say \\"hi\\""'
