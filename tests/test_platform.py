"""Platform substrate tests: capability reference, events, SmartApp."""

import pytest

from repro.platform import (
    PARAM,
    AttributeKind,
    SmartApp,
    are_complementary,
    complement_value,
    default_database,
)
from repro.platform.events import Event, EventKind


@pytest.fixture(scope="module")
def db():
    return default_database()


class TestCapabilityDatabase:
    def test_switch_attributes(self, db):
        cap = db.require("switch")
        assert cap.attributes["switch"].values == ("on", "off")

    def test_capability_prefix_accepted(self, db):
        assert db.get("capability.switch") is db.get("switch")

    def test_unknown_capability(self, db):
        assert db.get("flyingCar") is None
        with pytest.raises(KeyError):
            db.require("flyingCar")

    def test_switch_commands_effects(self, db):
        cmd = db.command("switch", "on")
        assert cmd.sets == (("switch", "on"),)

    def test_param_command(self, db):
        cmd = db.command("thermostat", "setHeatingSetpoint")
        assert cmd.sets[0][1] is PARAM

    def test_alarm_domain(self, db):
        attr = db.attribute("alarm", "alarm")
        assert set(attr.values) == {"off", "siren", "strobe", "both"}

    def test_numeric_attribute(self, db):
        attr = db.attribute("battery", "battery")
        assert attr.kind is AttributeKind.NUMERIC
        assert attr.domain_size() == 101

    def test_enum_domain_size(self, db):
        assert db.attribute("lock", "lock").domain_size() == 2

    def test_sensor_has_no_commands(self, db):
        assert not db.require("motionSensor").commands

    def test_effect_free_command(self, db):
        assert db.command("imageCapture", "take").sets == ()

    def test_attributes_for_value(self, db):
        assert "motion" in db.attributes_for_value("active")
        assert "contact" in db.attributes_for_value("open")

    def test_attribute_anywhere(self, db):
        assert db.attribute_anywhere("temperature") is not None
        assert db.attribute_anywhere("warpField") is None

    def test_primary_attribute(self, db):
        assert db.require("valve").primary_attribute.name == "valve"

    def test_actuator_flag(self, db):
        assert db.require("switch").is_actuator
        assert not db.require("waterSensor").is_actuator

    def test_all_enum_values_nonempty(self, db):
        for cap in db.capabilities.values():
            for attr in cap.attributes.values():
                if attr.kind is AttributeKind.ENUM:
                    assert attr.values, f"{cap.name}.{attr.name} has no values"

    def test_command_effects_reference_real_attributes(self, db):
        for cap in db.capabilities.values():
            for cmd in cap.commands.values():
                for attr_name, _effect in cmd.sets:
                    assert attr_name in cap.attributes, (cap.name, cmd.name)

    def test_enum_command_effects_in_domain(self, db):
        for cap in db.capabilities.values():
            for cmd in cap.commands.values():
                for attr_name, effect in cmd.sets:
                    if effect is PARAM:
                        continue
                    attr = cap.attributes[attr_name]
                    if attr.kind is AttributeKind.ENUM:
                        assert effect in attr.values, (cap.name, cmd.name, effect)

    def test_reference_covers_paper_examples(self, db):
        # Every device the paper's three running examples use must resolve.
        for name in (
            "smokeDetector",
            "switch",
            "alarm",
            "valve",
            "battery",
            "thermostat",
            "powerMeter",
            "lock",
            "waterSensor",
        ):
            assert db.get(name) is not None


class TestComplements:
    def test_complement_value(self):
        assert complement_value("motion", "active") == "inactive"
        assert complement_value("contact", "open") == "closed"
        assert complement_value("smoke", "detected") == "clear"
        assert complement_value("switch", "banana") is None

    def test_complement_is_involution(self):
        from repro.platform.events import COMPLEMENT_VALUES

        for attribute, table in COMPLEMENT_VALUES.items():
            for value, other in table.items():
                assert table[other] == value, (attribute, value)

    def test_device_event_complements(self):
        active = Event(EventKind.DEVICE, "m", "motion", "active")
        inactive = Event(EventKind.DEVICE, "m", "motion", "inactive")
        assert are_complementary(active, inactive)

    def test_different_devices_not_complementary(self):
        a = Event(EventKind.DEVICE, "m1", "motion", "active")
        b = Event(EventKind.DEVICE, "m2", "motion", "inactive")
        assert not are_complementary(a, b)

    def test_mode_values_complementary(self):
        home = Event(EventKind.MODE, "location", "mode", "home")
        away = Event(EventKind.MODE, "location", "mode", "away")
        assert are_complementary(home, away)

    def test_solar_complementary(self):
        sunrise = Event(EventKind.SOLAR, "location", "sunrise")
        sunset = Event(EventKind.SOLAR, "location", "sunset")
        assert are_complementary(sunrise, sunset)

    def test_timer_never_complementary(self):
        t = Event(EventKind.TIMER, "timer", "runIn")
        p = Event(EventKind.DEVICE, "p", "presence", "present")
        assert not are_complementary(t, p)


class TestEventMatching:
    def test_subscription_without_value_matches_any(self):
        sub = Event(EventKind.DEVICE, "sw", "switch")
        occurrence = Event(EventKind.DEVICE, "sw", "switch", "on")
        assert sub.matches(occurrence)

    def test_value_subscription_matches_exactly(self):
        sub = Event(EventKind.DEVICE, "sw", "switch", "on")
        assert sub.matches(Event(EventKind.DEVICE, "sw", "switch", "on"))
        assert not sub.matches(Event(EventKind.DEVICE, "sw", "switch", "off"))

    def test_label_formats(self):
        assert Event(EventKind.DEVICE, "sw", "switch", "on").label() == "sw.switch.on"
        assert Event(EventKind.DEVICE, "sw", "switch").label() == "sw.switch"
        assert Event(EventKind.MODE, "location", "mode", "home").label() == "mode.home"
        assert Event(EventKind.APP_TOUCH, "app", "appTouch").label() == "app-touch"
        assert Event(EventKind.SOLAR, "location", "sunset").label() == "sunset"
        assert Event(EventKind.TIMER, "timer", "runIn").label() == "timer:runIn"


class TestSmartApp:
    SOURCE = '''
/**
 * Sample app
 */
definition(
    name: "Sample App",
    category: "Safety & Security",
    description: "A test app")

preferences {
    section("S") {
        input "sw", "capability.switch", required: true
    }
}

def installed() {
    subscribe(sw, "switch.on", handler)
}

def handler(evt) {
    // react
    log.debug "on"
}
'''

    def test_metadata(self):
        app = SmartApp.from_source(self.SOURCE)
        assert app.name == "Sample App"
        assert app.category == "Safety & Security"
        assert app.description == "A test app"

    def test_explicit_name_wins(self):
        app = SmartApp.from_source(self.SOURCE, name="O99")
        assert app.name == "O99"

    def test_method_lookup(self):
        app = SmartApp.from_source(self.SOURCE)
        assert app.method("handler") is not None
        assert app.method("nope") is None

    def test_loc_skips_comments_and_blanks(self):
        app = SmartApp.from_source(self.SOURCE)
        loc = app.loc()
        assert 0 < loc < len(self.SOURCE.splitlines())
        # comment lines excluded
        assert loc <= 22
