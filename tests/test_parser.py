"""Parser tests: statements, expressions, SmartThings idioms."""

import pytest

from repro.lang import ast, parse
from repro.lang.parser import ParseError, parse_expression


def first_stmt(source):
    module = parse(source)
    return module.statements[0]


def only_method(source):
    module = parse(source)
    assert len(module.methods) == 1
    return next(iter(module.methods.values()))


class TestModuleStructure:
    def test_definition_call(self):
        stmt = first_stmt('definition(name: "X", category: "Safety")')
        assert isinstance(stmt, ast.ExprStmt)
        call = stmt.expr
        assert isinstance(call, ast.MethodCall)
        assert call.name == "definition"
        assert set(call.named_args) == {"name", "category"}

    def test_method_decl(self):
        method = only_method("def handler(evt) { }")
        assert method.name == "handler"
        assert [p.name for p in method.params] == ["evt"]

    def test_private_method(self):
        method = only_method("private initialize() { }")
        assert method.is_private

    def test_method_brace_next_line(self):
        method = only_method("def installed()\n{\n}")
        assert method.name == "installed"

    def test_method_with_default_param(self):
        method = only_method("def f(x = 5) { }")
        assert isinstance(method.params[0].default, ast.Literal)

    def test_def_assignment_is_not_method(self):
        module = parse("def x = foo()")
        assert not module.methods
        assert isinstance(module.statements[0], ast.Assign)

    def test_multiple_methods(self):
        module = parse("def a() { }\ndef b() { }")
        assert set(module.methods) == {"a", "b"}


class TestStatements:
    def test_if_else(self):
        method = only_method("def f() { if (x) { a() } else { b() } }")
        stmt = method.body.statements[0]
        assert isinstance(stmt, ast.IfStmt)
        assert isinstance(stmt.otherwise, ast.Block)

    def test_if_else_if_chain(self):
        method = only_method(
            "def f() { if (a) { } else if (b) { } else { } }"
        )
        stmt = method.body.statements[0]
        assert isinstance(stmt.otherwise, ast.IfStmt)
        assert isinstance(stmt.otherwise.otherwise, ast.Block)

    def test_else_on_next_line(self):
        method = only_method("def f() {\nif (a) {\n}\nelse {\nb()\n}\n}")
        assert isinstance(method.body.statements[0].otherwise, ast.Block)

    def test_while(self):
        stmt = only_method("def f() { while (x < 3) { x = x + 1 } }").body.statements[0]
        assert isinstance(stmt, ast.WhileStmt)

    def test_for_in(self):
        stmt = only_method("def f() { for (v in list) { log.debug v } }").body.statements[0]
        assert isinstance(stmt, ast.ForInStmt)
        assert stmt.var == "v"

    def test_return_value(self):
        stmt = only_method("def f() { return 5 }").body.statements[0]
        assert isinstance(stmt, ast.ReturnStmt)
        assert stmt.value.value == 5

    def test_bare_return(self):
        stmt = only_method("def f() { return }").body.statements[0]
        assert stmt.value is None

    def test_assignment_declaration(self):
        stmt = only_method("def f() { def x = 1 }").body.statements[0]
        assert isinstance(stmt, ast.Assign)
        assert stmt.is_decl

    def test_typed_declaration(self):
        stmt = only_method("def f() { def String msg = 'x' }").body.statements[0]
        assert stmt.target.id == "msg"

    def test_plus_equals(self):
        stmt = only_method("def f() { x += 2 }").body.statements[0]
        assert stmt.op == "+="

    def test_increment_statement(self):
        stmt = only_method("def f() { state.counter++ }").body.statements[0]
        assert isinstance(stmt, ast.Assign)
        assert stmt.op == "+="

    def test_state_field_assignment(self):
        stmt = only_method("def f() { state.counter = 1 }").body.statements[0]
        target = stmt.target
        assert isinstance(target, ast.PropertyAccess)
        assert target.obj.id == "state"


class TestCommandCalls:
    def test_input_command_call(self):
        module = parse(
            'preferences { section("S") { input "sw", "capability.switch", title: "T", required: true } }'
        )
        prefs = module.statements[0].expr
        section = prefs.closure.body.statements[0].expr
        input_call = section.closure.body.statements[0].expr
        assert input_call.name == "input"
        assert input_call.args[0].value == "sw"
        assert input_call.named_args["required"].value is True

    def test_log_command_call_with_receiver(self):
        stmt = only_method('def f() { log.debug "hello $x" }').body.statements[0]
        call = stmt.expr
        assert isinstance(call, ast.MethodCall)
        assert call.name == "debug"
        assert isinstance(call.receiver, ast.Name)

    def test_command_call_bare_ident_arg(self):
        stmt = first_stmt("subscribe theSwitch, handler")
        assert isinstance(stmt.expr, ast.MethodCall)
        assert len(stmt.expr.args) == 2


class TestExpressions:
    def test_precedence(self):
        expr = parse_expression("1 + 2 * 3")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_comparison_and_logic(self):
        expr = parse_expression("a > 1 && b < 2")
        assert expr.op == "&&"

    def test_ternary(self):
        expr = parse_expression("a ? b : c")
        assert isinstance(expr, ast.Ternary)

    def test_elvis(self):
        expr = parse_expression("thrshld ?: 10")
        assert isinstance(expr, ast.Elvis)

    def test_not(self):
        expr = parse_expression("!enabled")
        assert isinstance(expr, ast.UnaryOp)

    def test_negative_literal_folds(self):
        expr = parse_expression("-5")
        assert isinstance(expr, ast.Literal)
        assert expr.value == -5

    def test_property_chain(self):
        expr = parse_expression("evt.value")
        assert isinstance(expr, ast.PropertyAccess)
        assert expr.name == "value"

    def test_safe_navigation(self):
        expr = parse_expression("evt?.device")
        assert expr.safe

    def test_method_call_chain(self):
        expr = parse_expression('dev.currentValue("battery").toInteger()')
        assert isinstance(expr, ast.MethodCall)
        assert expr.name == "toInteger"
        assert expr.receiver.name == "currentValue"

    def test_index(self):
        expr = parse_expression("m['key']")
        assert isinstance(expr, ast.Index)

    def test_list_literal(self):
        expr = parse_expression("[1, 2, 3]")
        assert isinstance(expr, ast.ListLiteral)
        assert len(expr.items) == 3

    def test_empty_map(self):
        assert isinstance(parse_expression("[:]"), ast.MapLiteral)

    def test_map_literal(self):
        expr = parse_expression("[a: 1, b: 2]")
        assert isinstance(expr, ast.MapLiteral)
        assert [k for k, _ in expr.entries] == ["a", "b"]

    def test_range_literal(self):
        assert isinstance(parse_expression("[1..5]"), ast.RangeLiteral)

    def test_new_expr(self):
        expr = parse_expression("new Date(now())")
        assert isinstance(expr, ast.NewExpr)
        assert expr.type_name == "Date"

    def test_cast(self):
        expr = parse_expression("x as Integer")
        assert isinstance(expr, ast.CastExpr)

    def test_gstring_embeds_expression(self):
        expr = parse_expression('"level ${x + 1}"')
        assert isinstance(expr, ast.GString)
        assert isinstance(expr.parts[1], ast.BinaryOp)


class TestSmartThingsIdioms:
    def test_trailing_closure_with_params(self):
        stmt = only_method(
            'def g() { httpGet("http://u") { resp -> x = resp.status } }'
        ).body.statements[0]
        call = stmt.expr
        assert call.closure is not None
        assert call.closure.params == ["resp"]

    def test_reflective_call(self):
        stmt = only_method('def g() { "$name"() }').body.statements[0]
        call = stmt.expr
        assert isinstance(call, ast.MethodCall)
        assert call.is_reflective()

    def test_reflective_call_state_field(self):
        stmt = only_method('def g() { "$state.method"() }').body.statements[0]
        assert stmt.expr.is_reflective()

    def test_closure_count_idiom(self):
        stmt = only_method(
            'def g() { def n = events.count { it.value == "wet" } > 1 }'
        ).body.statements[0]
        assert isinstance(stmt, ast.Assign)

    def test_subscribe_call(self):
        stmt = first_stmt('subscribe(dev, "switch.on", handler)')
        call = stmt.expr
        assert call.name == "subscribe"
        assert len(call.args) == 3

    def test_walk_and_find_calls(self):
        module = parse("def f() { a(); b(c()) }")
        calls = ast.find_calls(module.methods["f"].body)
        assert {c.name for c in calls} == {"a", "b", "c"}


class TestErrors:
    def test_unterminated_block(self):
        with pytest.raises(ParseError):
            parse("def f() { if (x) {")

    def test_unexpected_token(self):
        with pytest.raises(ParseError):
            parse("def f() { ) }")

    def test_missing_paren(self):
        with pytest.raises(ParseError):
            parse("def f() { g(1, }")


def test_parse_error_survives_pickling():
    # A ParseError raised in a batch/service worker process must
    # reconstruct in the parent; a failed unpickle bricks the pool.
    import pickle

    with pytest.raises(ParseError) as caught:
        parse("def f() { if (x) {")
    clone = pickle.loads(pickle.dumps(caught.value))
    assert isinstance(clone, ParseError)
    assert str(clone) == str(caught.value)
    assert clone.token == caught.value.token
