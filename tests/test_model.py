"""State-model extraction, determinism, Kripke conversion."""

import pytest

from repro.ir import build_ir
from repro.model import build_kripke, extract_model
from repro.model.extractor import StateExplosionError, ModelExtractor
from repro.platform import SmartApp

WATER = '''
definition(name: "Water-Leak-Detector")
preferences {
    section("W") {
        input "water_sensor", "capability.waterSensor", required: true
        input "valve_device", "capability.valve", required: true
    }
}
def installed(){ subscribe(water_sensor, "water.wet", h) }
def h(evt){ valve_device.close() }
'''

THERMO = '''
definition(name: "Thermostat-Energy-Control")
preferences {
    section("C") {
        input "power_meter", "capability.powerMeter", required: true
        input "the_switch", "capability.switch", required: true
    }
}
def installed(){ subscribe(power_meter, "power", h) }
def h(evt){
    def v = power_meter.currentValue("power")
    if (v > 50) { the_switch.off() }
    if (v < 5) { the_switch.on() }
}
'''


@pytest.fixture(scope="module")
def water_model():
    return extract_model(build_ir(SmartApp.from_source(WATER)))


@pytest.fixture(scope="module")
def thermo_model():
    return extract_model(build_ir(SmartApp.from_source(THERMO)))


class TestWaterModel:
    """The paper's Fig. 9 example: 4 states, transitions on water.wet."""

    def test_four_states(self, water_model):
        assert water_model.size() == 4

    def test_attributes(self, water_model):
        assert [a.qualified for a in water_model.attributes] == [
            "water_sensor.water",
            "valve_device.valve",
        ]

    def test_transitions_close_valve(self, water_model):
        assert len(water_model.transitions) == 2
        for t in water_model.transitions:
            assert water_model.value_in(t.target, "valve_device", "valve") == "closed"
            assert water_model.value_in(t.target, "water_sensor", "water") == "wet"

    def test_event_requires_change(self, water_model):
        for t in water_model.transitions:
            assert water_model.value_in(t.source, "water_sensor", "water") == "dry"

    def test_deterministic(self, water_model):
        assert not water_model.nondeterministic_pairs()

    def test_state_label_format(self, water_model):
        label = water_model.state_label(water_model.states[0])
        assert label.startswith("[water.") and "valve." in label


class TestThermoModel:
    def test_power_domain_partitioned(self, thermo_model):
        domain = thermo_model.numeric_domains[("power_meter", "power")]
        assert domain.size() == 5

    def test_raw_count_reflects_full_domain(self, thermo_model):
        assert thermo_model.raw_state_count > 10_000

    def test_guarded_transitions_decided(self, thermo_model):
        # Transitions into the >50 region must switch off.
        for t in thermo_model.transitions:
            power = thermo_model.value_in(t.target, "power_meter", "power")
            if power == "power>50":
                assert thermo_model.value_in(t.target, "the_switch", "switch") == "off"
            if power == "power<5":
                assert thermo_model.value_in(t.target, "the_switch", "switch") == "on"

    def test_residual_conditions_empty(self, thermo_model):
        # All guards compare the event attribute with constants: fully
        # decidable, so no residual predicates remain.
        assert all(not t.condition for t in thermo_model.transitions)

    def test_deterministic(self, thermo_model):
        assert not thermo_model.nondeterministic_pairs()


class TestNondeterminism:
    SOURCE = '''
definition(name: "ND")
preferences {
    section("S") {
        input "m", "capability.motionSensor", required: true
        input "sw", "capability.switch", required: true
    }
}
def installed(){
    subscribe(m, "motion.active", h1)
    subscribe(m, "motion.active", h2)
}
def h1(evt){ sw.on() }
def h2(evt){ sw.off() }
'''

    def test_conflicting_handlers_detected(self):
        model = extract_model(build_ir(SmartApp.from_source(self.SOURCE)))
        assert model.nondeterministic_pairs()


class TestUserThresholdModel:
    SOURCE = '''
definition(name: "B")
preferences {
    section("S") {
        input "the_battery", "capability.battery", required: true
        input "sw", "capability.switch", required: true
        input "thrshld", "number", required: true
    }
}
def installed(){ subscribe(the_battery, "battery", h) }
def h(evt){
    if (the_battery.currentValue("battery") < thrshld) { sw.on() }
}
'''

    def test_symbolic_domain(self):
        model = extract_model(build_ir(SmartApp.from_source(self.SOURCE)))
        domain = model.numeric_domains[("the_battery", "battery")]
        assert domain.size() == 2
        # Low-battery region forces the switch on.
        for t in model.transitions:
            if model.value_in(t.target, "the_battery", "battery") == "battery<thrshld":
                assert model.value_in(t.target, "sw", "switch") == "on"


class TestModeModel:
    SOURCE = '''
definition(name: "M")
preferences {
    section("S") { input "sw", "capability.switch", required: true } }
def installed(){
    subscribe(location, "mode", h)
}
def h(evt){ sw.off() }
'''

    def test_mode_attribute_included(self):
        model = extract_model(build_ir(SmartApp.from_source(self.SOURCE)))
        assert model.attribute_index("location", "mode") is not None

    def test_custom_mode_values_discovered(self):
        source = self.SOURCE.replace('sw.off()', 'setLocationMode("vacation")')
        model = extract_model(build_ir(SmartApp.from_source(source)))
        index = model.attribute_index("location", "mode")
        assert "vacation" in model.attributes[index].domain


class TestExplosionGuard:
    def test_budget_enforced(self):
        ir = build_ir(SmartApp.from_source(WATER))
        extractor = ModelExtractor(ir, max_states=2)
        with pytest.raises(StateExplosionError):
            extractor.extract()


class TestKripke:
    def test_initial_states_cover_model(self, water_model):
        kripke = build_kripke(water_model)
        assert len(kripke.initial) == water_model.size()

    def test_event_props_on_targets(self, water_model):
        kripke = build_kripke(water_model)
        labelled = [
            s for s in kripke.states
            if any(p.startswith("ev:") for p in kripke.labels[s])
        ]
        assert labelled
        for state in labelled:
            assert "ev:water_sensor.water.wet" in kripke.labels[state]

    def test_act_props_record_writes(self, water_model):
        kripke = build_kripke(water_model)
        acts = {
            p
            for s in kripke.states
            for p in kripke.labels[s]
            if p.startswith("act:")
        }
        assert acts == {"act:valve_device.valve=closed"}

    def test_attr_props_everywhere(self, water_model):
        kripke = build_kripke(water_model)
        for state in kripke.states:
            attrs = [p for p in kripke.labels[state] if p.startswith("attr:")]
            assert len(attrs) == 2

    def test_relation_total(self, water_model):
        kripke = build_kripke(water_model)
        assert all(kripke.succ[s] for s in kripke.states)

    def test_witness_transitions_recorded(self, water_model):
        kripke = build_kripke(water_model)
        assert kripke.witness  # at least the wet transitions
        for (src, dst), transition in kripke.witness.items():
            assert transition.source == src.state
            assert transition.target == dst.state
