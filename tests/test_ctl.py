"""CTL formula AST and parser."""

import pytest

from repro.mc import ctl
from repro.mc.ctl import CTLParseError, parse_ctl


class TestParser:
    def test_prop(self):
        assert parse_ctl("p") == ctl.Prop("p")

    def test_quoted_prop_with_spaces(self):
        formula = parse_ctl('"attr:p.presence=not present"')
        assert formula == ctl.Prop("attr:p.presence=not present")

    def test_prop_with_punctuation(self):
        formula = parse_ctl("attr:sw.switch=on")
        assert formula == ctl.Prop("attr:sw.switch=on")

    def test_boolean_constants(self):
        assert parse_ctl("true") is ctl.TRUE
        assert parse_ctl("false") is ctl.FALSE

    def test_negation(self):
        assert parse_ctl("!p") == ctl.Not(ctl.Prop("p"))

    def test_and_or_precedence(self):
        formula = parse_ctl("a & b | c")
        assert isinstance(formula, ctl.Or)
        assert isinstance(formula.left, ctl.And)

    def test_implication_right_assoc(self):
        formula = parse_ctl("a -> b -> c")
        assert isinstance(formula, ctl.Implies)
        assert isinstance(formula.right, ctl.Implies)

    @pytest.mark.parametrize(
        "text,node",
        [
            ("AG p", ctl.AG),
            ("AF p", ctl.AF),
            ("AX p", ctl.AX),
            ("EG p", ctl.EG),
            ("EF p", ctl.EF),
            ("EX p", ctl.EX),
        ],
    )
    def test_unary_temporal(self, text, node):
        formula = parse_ctl(text)
        assert isinstance(formula, node)
        assert formula.operand == ctl.Prop("p")

    def test_until(self):
        formula = parse_ctl("E [ p U q ]")
        assert formula == ctl.EU(ctl.Prop("p"), ctl.Prop("q"))
        formula = parse_ctl("A [ p U q ]")
        assert formula == ctl.AU(ctl.Prop("p"), ctl.Prop("q"))

    def test_nested(self):
        formula = parse_ctl("AG (ev:smoke.detected -> AF attr:alarm.alarm=siren)")
        assert isinstance(formula, ctl.AG)
        assert isinstance(formula.operand, ctl.Implies)
        assert isinstance(formula.operand.right, ctl.AF)

    def test_double_ampersand_accepted(self):
        assert parse_ctl("a && b") == ctl.And(ctl.Prop("a"), ctl.Prop("b"))

    def test_parse_round_trip_via_str(self):
        texts = [
            "AG (p -> AF q)",
            "E [p U (q & !r)]",
            "!(a | b)",
            "AX (p & EG q)",
        ]
        for text in texts:
            formula = parse_ctl(text)
            assert parse_ctl(str(formula)) == formula

    def test_trailing_garbage_rejected(self):
        with pytest.raises(CTLParseError):
            parse_ctl("p q")

    def test_unterminated_until(self):
        with pytest.raises(CTLParseError):
            parse_ctl("E [ p U q")

    def test_unterminated_quote(self):
        with pytest.raises(CTLParseError):
            parse_ctl('"p')


class TestFormulaAPI:
    def test_operator_sugar(self):
        p, q = ctl.Prop("p"), ctl.Prop("q")
        assert (p & q) == ctl.And(p, q)
        assert (p | q) == ctl.Or(p, q)
        assert (~p) == ctl.Not(p)

    def test_atoms_collected(self):
        formula = parse_ctl("AG (a -> E [b U c])")
        assert formula.atoms() == {"a", "b", "c"}

    def test_formulas_hashable(self):
        assert len({parse_ctl("AG p"), parse_ctl("AG p")}) == 1
