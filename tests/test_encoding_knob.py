"""The encoding/backend knobs end to end: single apps past the extractor
budget, the all-corpus sweep mode, and the fuzz driver's encoding axis.

The partitioned encoding's reason to exist is scale: models whose domain
product can never be enumerated.  These tests pin the three entry points
that hand such models to the symbolic machinery — ``analyze_app`` (wide
single apps), ``sweep_dataset(all_corpus=True)`` (the 82-app union via
the dataset-level CLI), and ``repro.corpus.fuzz`` (the differential
campaign cross-checking encodings).
"""

import pytest

from repro.cli import main
from repro.corpus.batch import analyze_batch
from repro.corpus.sweep import sweep_dataset, sweep_environments
from repro.model.extractor import StateExplosionError
from repro.soteria import analyze_app, analyze_environment


def _wide_app(switches: int) -> str:
    """An app over ``switches`` + 2 devices: domain product 2^(n+2)."""
    inputs = "\n".join(
        f'input "sw{i}", "capability.switch"' for i in range(switches)
    )
    offs = "\n".join(f"sw{i}.off()" for i in range(switches))
    return f'''
definition(name: "Wide{switches}")
preferences {{ section("s") {{
{inputs}
    input "ws", "capability.waterSensor"
    input "vd", "capability.valve"
}} }}
def installed() {{ subscribe(ws, "water.wet", h) }}
def h(evt) {{
vd.open()
{offs}
}}
'''


class TestSingleAppSymbolic:
    def test_explicit_backend_still_raises_past_the_budget(self):
        with pytest.raises(StateExplosionError):
            analyze_app(_wide_app(18), backend="explicit")

    def test_auto_falls_back_to_symbolic_past_the_budget(self):
        # 2^20 = 1 048 576 domain-product states: over the 250k extractor
        # budget, unenumerable — and checked anyway.
        analysis = analyze_app(_wide_app(18))
        assert analysis.backend == "symbolic"
        assert analysis.kripke is None
        assert analysis.model.states == []          # never materialized
        assert analysis.state_estimate == 1 << 20
        assert analysis.checked_properties           # CTL ran
        # The water->valve-open hazard is found at any width.
        small = analyze_app(_wide_app(2), backend="explicit")
        assert analysis.violated_ids() == small.violated_ids()

    def test_symbolic_backend_matches_explicit_on_small_apps(self):
        source = _wide_app(3)
        explicit = analyze_app(source, backend="explicit")
        symbolic = analyze_app(source, backend="symbolic")
        assert symbolic.backend == "symbolic"
        assert symbolic.kripke is None
        assert explicit.violated_ids() == symbolic.violated_ids()
        assert explicit.checked_properties == symbolic.checked_properties
        for pid, explicit_results in explicit.check_results.items():
            symbolic_results = symbolic.check_results[pid]
            assert [r.holds for r in explicit_results] == [
                r.holds for r in symbolic_results
            ], pid

    def test_symbolic_skip_of_determinism_check_is_surfaced(self):
        # The explicit path runs DET over the materialized transitions;
        # the symbolic path cannot — that skip must be recorded on the
        # analysis and printed in the report, not silently dropped.
        from repro.reporting.report import render_report

        symbolic = analyze_app(_wide_app(18))
        assert symbolic.backend == "symbolic"
        assert symbolic.skipped_properties == ["DET"]
        assert (
            "skipped checks (symbolic backend): DET"
            in render_report(symbolic)
        )
        explicit = analyze_app(_wide_app(2), backend="explicit")
        assert explicit.skipped_properties == []
        assert "skipped checks" not in render_report(explicit)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            analyze_app(_wide_app(2), backend="quantum")

    def test_report_names_the_backend_and_exports_are_guarded(
        self, tmp_path, capsys
    ):
        # The symbolic fallback has no materialized transitions: the
        # report must say so (not "states: 0"), and --dot/--smv must
        # refuse to write empty artifacts.
        app = tmp_path / "wide.groovy"
        app.write_text(_wide_app(18))
        dot, smv = tmp_path / "w.dot", tmp_path / "w.smv"
        code = main(
            ["analyze", str(app), "--dot", str(dot), "--smv", str(smv)]
        )
        out = capsys.readouterr().out
        assert code == 1                       # the hazard is still found
        assert "symbolic backend" in out
        assert "states: 1048576" in out        # estimate, not a bogus 0
        assert out.count("NOT written") == 2
        assert not dot.exists() and not smv.exists()


class TestEnvironmentEncodingKnob:
    GROUP = ("App12", "App13", "App14")  # MalIoT smoke/lock chain

    def _members(self):
        analyses = analyze_batch(list(self.GROUP), jobs=1)
        return [analyses[a] for a in self.GROUP]

    def test_encoding_recorded_and_forced(self):
        members = self._members()
        explicit = analyze_environment(list(members), backend="explicit")
        assert explicit.encoding is None            # no relation encoded
        for encoding in ("monolithic", "partitioned"):
            run = analyze_environment(
                list(members), backend="symbolic", encoding=encoding
            )
            assert run.encoding == encoding
            assert run.violated_ids() == explicit.violated_ids()

    def test_unknown_encoding_rejected(self):
        with pytest.raises(ValueError):
            analyze_environment(
                self._members(), backend="symbolic", encoding="fused"
            )

    def test_bogus_encoding_rejected_even_when_explicit_resolves(self):
        # A typo must fail fast, not silently succeed because this
        # particular group happened to stay under the explicit budget.
        with pytest.raises(ValueError):
            analyze_environment(self._members(), encoding="partitoned")
        with pytest.raises(ValueError):
            analyze_app(_wide_app(2), encoding="partitoned")

    def test_sweep_cache_keyed_on_backend_and_encoding(self, tmp_path):
        # A forced-encoding validation run must never be served a result
        # the auto path produced (it would silently skip the encoder
        # under test and mislabel the output).
        first = sweep_environments([self.GROUP], jobs=1, cache_dir=tmp_path)
        assert not first[0].cached
        warm = sweep_environments([self.GROUP], jobs=1, cache_dir=tmp_path)
        assert warm[0].cached
        forced = sweep_environments(
            [self.GROUP], jobs=1, cache_dir=tmp_path,
            backend="symbolic", encoding="partitioned",
        )
        assert not forced[0].cached
        assert forced[0].environment.encoding == "partitioned"
        assert forced[0].violated_ids() == warm[0].violated_ids()
        # ... and the forced run caches under its own key.
        forced_warm = sweep_environments(
            [self.GROUP], jobs=1, cache_dir=tmp_path,
            backend="symbolic", encoding="partitioned",
        )
        assert forced_warm[0].cached

    def test_member_analyses_inherit_forced_knobs(self):
        # Regression: analyze_environment(sources, backend=..., encoding=...)
        # used to analyze raw-source members with the *default* knobs —
        # a forced-symbolic environment run silently built each member's
        # explicit model anyway.
        from repro.corpus.loader import load_source

        sources = [load_source(app_id) for app_id in self.GROUP]
        env = analyze_environment(
            sources, backend="symbolic", encoding="partitioned"
        )
        assert env.backend == "symbolic"
        for member in env.analyses:
            assert member.backend == "symbolic"
            assert member.kripke is None
            assert member.model.states == []  # skeleton, never materialized
            # ... and the silently-unrunnable determinism check is now
            # surfaced instead of dropped.
            assert member.skipped_properties == ["DET"]

    def test_sweep_threads_encoding_to_every_group(self):
        outcomes = sweep_environments(
            [self.GROUP], jobs=1, backend="symbolic", encoding="partitioned"
        )
        (outcome,) = outcomes
        assert outcome.environment.backend == "symbolic"
        assert outcome.environment.encoding == "partitioned"
        reference = sweep_environments([self.GROUP], jobs=1)
        assert outcome.violated_ids() == reference[0].violated_ids()


class TestAllCorpusSweep:
    def test_all_corpus_is_one_union_of_the_whole_dataset(self):
        outcomes = sweep_dataset(
            "maliot", jobs=1, all_corpus=True, backend="symbolic"
        )
        (outcome,) = outcomes
        assert len(outcome.group) == 17             # every MalIoT app
        assert not outcome.failed                   # no skip, no bailout
        environment = outcome.environment
        assert environment.backend == "symbolic"
        assert environment.union_model.states == [] # never materialized
        # The curated in-cluster ground truth survives at dataset scale.
        assert {"P.3", "P.14"} <= environment.violated_ids()

    def test_cli_all_corpus_flag(self, capsys):
        code = main(
            ["sweep", "maliot", "--all-corpus", "--jobs", "1",
             "--backend", "symbolic", "--encoding", "partitioned"]
        )
        out = capsys.readouterr().out
        assert code == 1                            # violations found
        assert "all-corpus union" in out
        assert "(17 apps)" in out
        assert "[symbolic/partitioned/fast]" in out
        assert "0 failed" in out


class TestFuzzEncodingAxis:
    def test_campaign_cross_checks_both_encodings(self):
        from repro.corpus.fuzz import FuzzConfig, run_fuzz

        report = run_fuzz(
            seed=11, count=3, jobs=1, config=FuzzConfig(encoding="both")
        )
        assert report.config.encoding == "both"
        assert report.ok, [r.detail for r in report.failures()]

    def test_reproducer_records_the_encoding(self, tmp_path):
        import json

        from repro.corpus.fuzz import CaseResult, FuzzConfig, write_reproducer

        result = CaseResult(
            index=0, kind="app", app_ids=("GenX",), sources=("src",),
            injected=(), detected=(), status="mismatch", detail="d",
        )
        directory = write_reproducer(
            result, FuzzConfig(encoding="both"), tmp_path
        )
        meta = json.loads((directory / "meta.json").read_text())
        assert meta["config"]["encoding"] == "both"
