"""Dynamic BDD variable reordering: sifting must never change semantics.

Reordering is an *in-place* transformation of the shared node table —
every node id must keep denoting the same boolean function, the unique
table must stay canonical, and the encoder's interleaved x/y pairing
invariant must survive any sequence of group moves.  These are
property-style tests: random formulas, random assignments, forced sifts.
"""

import random

import pytest

from repro.mc.bdd import BDD
from repro.model.encoder import SymbolicUnionModel, encode_union
from repro.model.union import build_union_skeleton
from repro.model import build_kripke, build_union_model, extract_model
from repro.ir import build_ir
from repro.platform.smartapp import SmartApp


def _random_formula(bdd, names, rng, depth=4):
    if depth == 0 or rng.random() < 0.25:
        name = rng.choice(names)
        return bdd.var(name) if rng.random() < 0.5 else bdd.nvar(name)
    choice = rng.random()
    left = _random_formula(bdd, names, rng, depth - 1)
    if choice < 0.2:
        return bdd.not_(left)
    right = _random_formula(bdd, names, rng, depth - 1)
    if choice < 0.5:
        return bdd.and_(left, right)
    if choice < 0.8:
        return bdd.or_(left, right)
    return bdd.xor(left, right)


def _random_manager(seed, nvars):
    rng = random.Random(seed)
    bdd = BDD()
    names = [f"v{i}" for i in range(nvars)]
    for name in names:
        bdd.add_var(name)
    functions = [_random_formula(bdd, names, rng) for _ in range(6)]
    assignments = [
        {name: rng.random() < 0.5 for name in names} for _ in range(50)
    ]
    return bdd, names, functions, assignments


class TestSiftingPreservesFunctions:
    @pytest.mark.parametrize("seed", range(8))
    def test_every_bdd_denotes_the_same_function_after_sifting(self, seed):
        bdd, names, functions, assignments = _random_manager(seed, 10)
        before = [
            [bdd.evaluate(f, a) for a in assignments] for f in functions
        ]
        bdd.sift(roots=functions)
        after = [
            [bdd.evaluate(f, a) for a in assignments] for f in functions
        ]
        assert before == after
        assert sorted(bdd.var_order()) == sorted(names)

    @pytest.mark.parametrize("seed", range(4))
    def test_unique_table_stays_canonical(self, seed):
        bdd, _names, functions, _assignments = _random_manager(seed, 8)
        bdd.sift(roots=functions)
        for key, node_id in bdd._unique.items():
            node = bdd._nodes[node_id]
            assert (node.level, node.low, node.high) == key
            assert node.low != node.high  # still reduced
        # No two live nodes share a triple (canonicity).
        triples = [
            (n.level, n.low, n.high)
            for n in bdd._nodes[2:]
            if n is not None
        ]
        assert len(triples) == len(set(triples))

    def test_swap_adjacent_twice_restores_the_order(self):
        bdd, _names, functions, assignments = _random_manager(99, 6)
        order = bdd.var_order()
        before = [[bdd.evaluate(f, a) for a in assignments] for f in functions]
        bdd.swap_adjacent(2)
        assert bdd.var_order() != order
        bdd.swap_adjacent(2)
        assert bdd.var_order() == order
        after = [[bdd.evaluate(f, a) for a in assignments] for f in functions]
        assert before == after

    @pytest.mark.parametrize("seed", range(4))
    def test_grouped_sifting_keeps_groups_adjacent_and_ordered(self, seed):
        bdd, names, functions, assignments = _random_manager(seed + 50, 10)
        order = bdd.var_order()
        groups = [[order[i], order[i + 1]] for i in range(0, len(order), 2)]
        before = [[bdd.evaluate(f, a) for a in assignments] for f in functions]
        bdd.sift(groups=groups, roots=functions)
        new_order = bdd.var_order()
        for first, second in groups:
            index = new_order.index(first)
            assert new_order[index + 1] == second, (
                f"group ({first}, {second}) split or flipped: {new_order}"
            )
        after = [[bdd.evaluate(f, a) for a in assignments] for f in functions]
        assert before == after

    def test_non_contiguous_groups_rejected(self):
        bdd, names, functions, _assignments = _random_manager(7, 6)
        with pytest.raises(ValueError):
            bdd.sift(groups=[[names[0], names[2]]] + [[n] for n in names[1:2] + names[3:]])
        with pytest.raises(ValueError):
            bdd.sift(groups=[[n] for n in names[:-1]])  # not a partition


class TestAndExistsList:
    @pytest.mark.parametrize("seed", range(10))
    def test_matches_exists_of_conjunction(self, seed):
        rng = random.Random(seed)
        bdd = BDD()
        names = [f"v{i}" for i in range(9)]
        for name in names:
            bdd.add_var(name)
        conjuncts = [_random_formula(bdd, names, rng, 3) for _ in range(4)]
        quantified = rng.sample(names, rng.randint(1, len(names)))
        fused = bdd.and_exists_list(quantified, conjuncts)
        reference = bdd.exists(quantified, bdd.conj(conjuncts))
        assert fused == reference

    def test_empty_conjunct_list_is_true(self):
        bdd = BDD()
        bdd.add_var("a")
        assert bdd.and_exists_list(["a"], []) == bdd.TRUE

    def test_short_circuits_on_false(self):
        bdd = BDD()
        a = bdd.add_var("a")
        assert bdd.and_exists_list(["a"], [a, bdd.not_(a)]) == bdd.FALSE


class TestCollection:
    def test_protected_roots_survive_unprotected_nodes_collected(self):
        bdd = BDD()
        a, b = bdd.add_var("a"), bdd.add_var("b")
        keep = bdd.protect(bdd.and_(a, b))
        dead = bdd.xor(a, b)
        collected = bdd.collect()
        assert collected >= 1
        assert bdd._nodes[keep] is not None
        assert bdd._nodes[dead] is None  # slot cleared, never reused
        # The protected function still evaluates.
        assert bdd.evaluate(keep, {"a": True, "b": True})

    def test_maybe_reorder_prefers_collection_over_sifting(self):
        bdd = BDD()
        names = [f"v{i}" for i in range(8)]
        for name in names:
            bdd.add_var(name)
        rng = random.Random(3)
        keep = bdd.protect(_random_formula(bdd, names, rng))
        for _ in range(60):  # pile up dead intermediates
            _random_formula(bdd, names, rng)
        bdd.set_auto_reorder(None, threshold=bdd.size(keep) + 8)
        ran = bdd.maybe_reorder()
        # Garbage alone explained the growth: collected, no sift pass.
        assert not ran
        assert bdd.reorder_count == 0
        assert bdd.live_size() <= bdd.size(keep)

    def test_maybe_reorder_sifts_when_live_nodes_outgrow_threshold(self):
        bdd = BDD()
        names = [f"v{i}" for i in range(10)]
        for name in names:
            bdd.add_var(name)
        rng = random.Random(4)
        roots = [bdd.protect(_random_formula(bdd, names, rng)) for _ in range(8)]
        bdd.set_auto_reorder(None, threshold=4)
        assert bdd.maybe_reorder()
        assert bdd.reorder_count == 1
        for root in roots:
            assert bdd._nodes[root] is not None or root in (0, 1)


# ----------------------------------------------------------------------
# The encoder's pairing invariant under forced reordering
# ----------------------------------------------------------------------
APP_A = '''
definition(name: "AppA")
preferences { section("s") {
    input "sw", "capability.switch"
    input "ws", "capability.waterSensor"
} }
def installed() { subscribe(ws, "water.wet", h) }
def h(evt) { sw.off() }
'''

APP_B = '''
definition(name: "AppB")
preferences { section("s") {
    input "sw", "capability.switch"
    input "ms", "capability.motionSensor"
} }
def installed() { subscribe(ms, "motion.active", h) }
def h(evt) { sw.on() }
'''


def _model_of(source):
    return extract_model(build_ir(SmartApp.from_source(source)))


def _assert_interleaved(symbolic):
    for xs, ys in zip(symbolic._xbits, symbolic._ybits):
        for xname, yname in zip(xs, ys):
            assert symbolic.bdd.level_of(yname) == symbolic.bdd.level_of(xname) + 1
    for xname, yname in zip(symbolic._frag_x, symbolic._frag_y):
        assert symbolic.bdd.level_of(yname) == symbolic.bdd.level_of(xname) + 1


class TestEncoderReordering:
    @pytest.mark.parametrize("encoding", ["monolithic", "partitioned"])
    def test_forced_sift_preserves_interleaving_and_state_count(self, encoding):
        models = [_model_of(APP_A), _model_of(APP_B)]
        symbolic = encode_union(models, encoding=encoding)
        reference = symbolic.state_count()
        symbolic.bdd.sift(symbolic.reorder_groups())
        _assert_interleaved(symbolic)
        assert symbolic.state_count() == reference
        kripke = build_kripke(build_union_model(models))
        assert symbolic.state_count() == len(kripke.states)

    @pytest.mark.parametrize("encoding", ["monolithic", "partitioned"])
    def test_low_threshold_triggers_reorder_during_construction(self, encoding):
        skeleton = build_union_skeleton([_model_of(APP_A), _model_of(APP_B)])
        symbolic = SymbolicUnionModel(
            skeleton, encoding=encoding, reorder_threshold=2
        )
        # Either collection alone absorbed the growth or a sift ran;
        # in both cases the encoded model must be intact.
        reference = SymbolicUnionModel(
            skeleton, encoding=encoding, reorder_threshold=None
        )
        assert symbolic.state_count() == reference.state_count()
        _assert_interleaved(symbolic)


# ----------------------------------------------------------------------
# Cache invalidation under reordering/collection, on BOTH kernels:
# support and op-cache queries interleaved with sift/swap/collect must
# never be served a stale (pre-reorder) answer.
# ----------------------------------------------------------------------
from repro.mc.kernel import make_kernel  # noqa: E402 (suite-local import)


def _brute_support(kernel, f, names):
    """Support by cofactor difference — no caches, no kernel internals."""
    return frozenset(
        name
        for name in names
        if kernel.restrict(f, {name: False}) != kernel.restrict(f, {name: True})
    )


@pytest.mark.parametrize("kernel_name", ["reference", "fast"])
class TestCacheInvalidationAcrossKernels:
    @pytest.mark.parametrize("seed", range(6))
    def test_support_survives_sift_swap_collect_interleaving(
        self, kernel_name, seed
    ):
        rng = random.Random(seed)
        kernel = make_kernel(kernel_name)
        names = [f"v{i}" for i in range(8)]
        for name in names:
            kernel.add_var(name)
        roots = [
            kernel.protect(_random_formula(kernel, names, rng))
            for _ in range(5)
        ]
        # Warm the support cache before any structural churn.
        for root in roots:
            assert kernel.support(root) == _brute_support(kernel, root, names)
        for step in range(8):
            action = rng.choice(["sift", "swap", "collect", "ops"])
            if action == "sift":
                kernel.sift(roots=roots)
            elif action == "swap":
                kernel.swap_adjacent(rng.randrange(len(names) - 1))
            elif action == "collect":
                kernel.collect()
            else:  # churn the op caches between reorders
                _random_formula(kernel, names, rng)
            for root in roots:
                assert kernel.support(root) == _brute_support(
                    kernel, root, names
                ), f"stale support after {action} (step {step})"

    @pytest.mark.parametrize("seed", range(6))
    def test_quantification_caches_invalidated_by_swap(self, kernel_name, seed):
        # The fast kernel memoizes exists/and_exists per quantifier-mask
        # across calls; masks are level-based, so a swap that moves
        # levels MUST invalidate them.  Pose the identical query before
        # and after a swap and compare against an untouched twin kernel.
        rng = random.Random(1000 + seed)
        kernel = make_kernel(kernel_name)
        twin = make_kernel(kernel_name)
        names = [f"v{i}" for i in range(8)]
        for name in names:
            kernel.add_var(name)
            twin.add_var(name)
        quantified = rng.sample(names, 3)
        seeds = [rng.random() for _ in range(40)]

        def build(manager):
            local = random.Random(2000 + seed)
            f = _random_formula(manager, names, local)
            g = _random_formula(manager, names, local)
            return f, g

        f, g = build(kernel)
        tf, tg = build(twin)
        assignments = [
            {name: s > i / 40 for i, name in enumerate(names)} for s in seeds
        ]

        def snapshot(manager, left, right):
            fused = manager.and_exists(quantified, left, right)
            lone = manager.exists(quantified, manager.and_(left, right))
            assert fused == lone
            return [manager.evaluate(fused, a) for a in assignments]

        before = snapshot(kernel, f, g)
        assert before == snapshot(twin, tf, tg)
        for index in (0, 3, 5, 1):
            kernel.swap_adjacent(index)
            # Same semantic query, new level layout: a stale level-mask
            # cache entry would surface here as a wrong (pre-swap) BDD.
            assert snapshot(kernel, f, g) == before
        kernel.collect(roots=(f, g))
        assert snapshot(kernel, f, g) == before

    @pytest.mark.parametrize("seed", range(4))
    def test_cached_formulas_stable_across_maybe_reorder(
        self, kernel_name, seed
    ):
        rng = random.Random(3000 + seed)
        kernel = make_kernel(kernel_name)
        names = [f"v{i}" for i in range(10)]
        for name in names:
            kernel.add_var(name)
        keep = kernel.protect(_random_formula(kernel, names, rng))
        assignments = [
            {name: rng.random() < 0.5 for name in names} for _ in range(30)
        ]
        truth = [kernel.evaluate(keep, a) for a in assignments]
        support = kernel.support(keep)
        kernel.set_auto_reorder(None, threshold=4)
        for _ in range(30):  # garbage + growth pressure
            _random_formula(kernel, names, rng)
            kernel.maybe_reorder()
        assert [kernel.evaluate(keep, a) for a in assignments] == truth
        assert kernel.support(keep) == support
        assert kernel.support(keep) == _brute_support(kernel, keep, names)
