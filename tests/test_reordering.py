"""Dynamic BDD variable reordering: sifting must never change semantics.

Reordering is an *in-place* transformation of the shared node table —
every node id must keep denoting the same boolean function, the unique
table must stay canonical, and the encoder's interleaved x/y pairing
invariant must survive any sequence of group moves.  These are
property-style tests: random formulas, random assignments, forced sifts.
"""

import random

import pytest

from repro.mc.bdd import BDD
from repro.model.encoder import SymbolicUnionModel, encode_union
from repro.model.union import build_union_skeleton
from repro.model import build_kripke, build_union_model, extract_model
from repro.ir import build_ir
from repro.platform.smartapp import SmartApp


def _random_formula(bdd, names, rng, depth=4):
    if depth == 0 or rng.random() < 0.25:
        name = rng.choice(names)
        return bdd.var(name) if rng.random() < 0.5 else bdd.nvar(name)
    choice = rng.random()
    left = _random_formula(bdd, names, rng, depth - 1)
    if choice < 0.2:
        return bdd.not_(left)
    right = _random_formula(bdd, names, rng, depth - 1)
    if choice < 0.5:
        return bdd.and_(left, right)
    if choice < 0.8:
        return bdd.or_(left, right)
    return bdd.xor(left, right)


def _random_manager(seed, nvars):
    rng = random.Random(seed)
    bdd = BDD()
    names = [f"v{i}" for i in range(nvars)]
    for name in names:
        bdd.add_var(name)
    functions = [_random_formula(bdd, names, rng) for _ in range(6)]
    assignments = [
        {name: rng.random() < 0.5 for name in names} for _ in range(50)
    ]
    return bdd, names, functions, assignments


class TestSiftingPreservesFunctions:
    @pytest.mark.parametrize("seed", range(8))
    def test_every_bdd_denotes_the_same_function_after_sifting(self, seed):
        bdd, names, functions, assignments = _random_manager(seed, 10)
        before = [
            [bdd.evaluate(f, a) for a in assignments] for f in functions
        ]
        bdd.sift(roots=functions)
        after = [
            [bdd.evaluate(f, a) for a in assignments] for f in functions
        ]
        assert before == after
        assert sorted(bdd.var_order()) == sorted(names)

    @pytest.mark.parametrize("seed", range(4))
    def test_unique_table_stays_canonical(self, seed):
        bdd, _names, functions, _assignments = _random_manager(seed, 8)
        bdd.sift(roots=functions)
        for key, node_id in bdd._unique.items():
            node = bdd._nodes[node_id]
            assert (node.level, node.low, node.high) == key
            assert node.low != node.high  # still reduced
        # No two live nodes share a triple (canonicity).
        triples = [
            (n.level, n.low, n.high)
            for n in bdd._nodes[2:]
            if n is not None
        ]
        assert len(triples) == len(set(triples))

    def test_swap_adjacent_twice_restores_the_order(self):
        bdd, _names, functions, assignments = _random_manager(99, 6)
        order = bdd.var_order()
        before = [[bdd.evaluate(f, a) for a in assignments] for f in functions]
        bdd.swap_adjacent(2)
        assert bdd.var_order() != order
        bdd.swap_adjacent(2)
        assert bdd.var_order() == order
        after = [[bdd.evaluate(f, a) for a in assignments] for f in functions]
        assert before == after

    @pytest.mark.parametrize("seed", range(4))
    def test_grouped_sifting_keeps_groups_adjacent_and_ordered(self, seed):
        bdd, names, functions, assignments = _random_manager(seed + 50, 10)
        order = bdd.var_order()
        groups = [[order[i], order[i + 1]] for i in range(0, len(order), 2)]
        before = [[bdd.evaluate(f, a) for a in assignments] for f in functions]
        bdd.sift(groups=groups, roots=functions)
        new_order = bdd.var_order()
        for first, second in groups:
            index = new_order.index(first)
            assert new_order[index + 1] == second, (
                f"group ({first}, {second}) split or flipped: {new_order}"
            )
        after = [[bdd.evaluate(f, a) for a in assignments] for f in functions]
        assert before == after

    def test_non_contiguous_groups_rejected(self):
        bdd, names, functions, _assignments = _random_manager(7, 6)
        with pytest.raises(ValueError):
            bdd.sift(groups=[[names[0], names[2]]] + [[n] for n in names[1:2] + names[3:]])
        with pytest.raises(ValueError):
            bdd.sift(groups=[[n] for n in names[:-1]])  # not a partition


class TestAndExistsList:
    @pytest.mark.parametrize("seed", range(10))
    def test_matches_exists_of_conjunction(self, seed):
        rng = random.Random(seed)
        bdd = BDD()
        names = [f"v{i}" for i in range(9)]
        for name in names:
            bdd.add_var(name)
        conjuncts = [_random_formula(bdd, names, rng, 3) for _ in range(4)]
        quantified = rng.sample(names, rng.randint(1, len(names)))
        fused = bdd.and_exists_list(quantified, conjuncts)
        reference = bdd.exists(quantified, bdd.conj(conjuncts))
        assert fused == reference

    def test_empty_conjunct_list_is_true(self):
        bdd = BDD()
        bdd.add_var("a")
        assert bdd.and_exists_list(["a"], []) == bdd.TRUE

    def test_short_circuits_on_false(self):
        bdd = BDD()
        a = bdd.add_var("a")
        assert bdd.and_exists_list(["a"], [a, bdd.not_(a)]) == bdd.FALSE


class TestCollection:
    def test_protected_roots_survive_unprotected_nodes_collected(self):
        bdd = BDD()
        a, b = bdd.add_var("a"), bdd.add_var("b")
        keep = bdd.protect(bdd.and_(a, b))
        dead = bdd.xor(a, b)
        collected = bdd.collect()
        assert collected >= 1
        assert bdd._nodes[keep] is not None
        assert bdd._nodes[dead] is None  # slot cleared, never reused
        # The protected function still evaluates.
        assert bdd.evaluate(keep, {"a": True, "b": True})

    def test_maybe_reorder_prefers_collection_over_sifting(self):
        bdd = BDD()
        names = [f"v{i}" for i in range(8)]
        for name in names:
            bdd.add_var(name)
        rng = random.Random(3)
        keep = bdd.protect(_random_formula(bdd, names, rng))
        for _ in range(60):  # pile up dead intermediates
            _random_formula(bdd, names, rng)
        bdd.set_auto_reorder(None, threshold=bdd.size(keep) + 8)
        ran = bdd.maybe_reorder()
        # Garbage alone explained the growth: collected, no sift pass.
        assert not ran
        assert bdd.reorder_count == 0
        assert bdd.live_size() <= bdd.size(keep)

    def test_maybe_reorder_sifts_when_live_nodes_outgrow_threshold(self):
        bdd = BDD()
        names = [f"v{i}" for i in range(10)]
        for name in names:
            bdd.add_var(name)
        rng = random.Random(4)
        roots = [bdd.protect(_random_formula(bdd, names, rng)) for _ in range(8)]
        bdd.set_auto_reorder(None, threshold=4)
        assert bdd.maybe_reorder()
        assert bdd.reorder_count == 1
        for root in roots:
            assert bdd._nodes[root] is not None or root in (0, 1)


# ----------------------------------------------------------------------
# The encoder's pairing invariant under forced reordering
# ----------------------------------------------------------------------
APP_A = '''
definition(name: "AppA")
preferences { section("s") {
    input "sw", "capability.switch"
    input "ws", "capability.waterSensor"
} }
def installed() { subscribe(ws, "water.wet", h) }
def h(evt) { sw.off() }
'''

APP_B = '''
definition(name: "AppB")
preferences { section("s") {
    input "sw", "capability.switch"
    input "ms", "capability.motionSensor"
} }
def installed() { subscribe(ms, "motion.active", h) }
def h(evt) { sw.on() }
'''


def _model_of(source):
    return extract_model(build_ir(SmartApp.from_source(source)))


def _assert_interleaved(symbolic):
    for xs, ys in zip(symbolic._xbits, symbolic._ybits):
        for xname, yname in zip(xs, ys):
            assert symbolic.bdd.level_of(yname) == symbolic.bdd.level_of(xname) + 1
    for xname, yname in zip(symbolic._frag_x, symbolic._frag_y):
        assert symbolic.bdd.level_of(yname) == symbolic.bdd.level_of(xname) + 1


class TestEncoderReordering:
    @pytest.mark.parametrize("encoding", ["monolithic", "partitioned"])
    def test_forced_sift_preserves_interleaving_and_state_count(self, encoding):
        models = [_model_of(APP_A), _model_of(APP_B)]
        symbolic = encode_union(models, encoding=encoding)
        reference = symbolic.state_count()
        symbolic.bdd.sift(symbolic.reorder_groups())
        _assert_interleaved(symbolic)
        assert symbolic.state_count() == reference
        kripke = build_kripke(build_union_model(models))
        assert symbolic.state_count() == len(kripke.states)

    @pytest.mark.parametrize("encoding", ["monolithic", "partitioned"])
    def test_low_threshold_triggers_reorder_during_construction(self, encoding):
        skeleton = build_union_skeleton([_model_of(APP_A), _model_of(APP_B)])
        symbolic = SymbolicUnionModel(
            skeleton, encoding=encoding, reorder_threshold=2
        )
        # Either collection alone absorbed the growth or a sift ran;
        # in both cases the encoded model must be intact.
        reference = SymbolicUnionModel(
            skeleton, encoding=encoding, reorder_threshold=None
        )
        assert symbolic.state_count() == reference.state_count()
        _assert_interleaved(symbolic)
