"""Symbolic union encoding: variable blocks, fragments, reachability.

The encoder compiles app rules straight to a BDD relation — these tests
pin its structural guarantees (shared blocks for shared devices, no
materialized product, reachable-state counts matching the explicit
Kripke construction) independently of the CTL layer, which
``test_backends_differential`` cross-validates end to end.
"""

from repro.mc.symbolic import SymbolicModelChecker
from repro.model import (
    build_kripke,
    build_union_model,
    build_union_skeleton,
    encode_union,
    extract_model,
)
from repro.platform.smartapp import SmartApp
from repro.ir import build_ir

APP_A = '''
definition(name: "AppA")
preferences { section("s") {
    input "sw", "capability.switch"
    input "ws", "capability.waterSensor"
} }
def installed() { subscribe(ws, "water.wet", h) }
def h(evt) { sw.off() }
'''

APP_B = '''
definition(name: "AppB")
preferences { section("s") {
    input "sw", "capability.switch"
    input "ms", "capability.motionSensor"
} }
def installed() { subscribe(ms, "motion.active", h) }
def h(evt) { sw.on() }
'''


def model_of(source: str):
    return extract_model(build_ir(SmartApp.from_source(source)))


class TestSkeleton:
    def test_skeleton_has_no_states_or_transitions(self):
        skeleton = build_union_skeleton([model_of(APP_A), model_of(APP_B)])
        assert skeleton.states == []
        assert skeleton.transitions == []
        assert skeleton.rules and skeleton.rule_origins

    def test_skeleton_attributes_match_materialized_union(self):
        models = [model_of(APP_A), model_of(APP_B)]
        skeleton = build_union_skeleton(models)
        union = build_union_model(models)
        assert skeleton.attributes == union.attributes
        assert skeleton.numeric_domains == union.numeric_domains
        assert skeleton.apps == union.apps

    def test_materialized_union_unchanged_by_refactor(self):
        # build_union_model now routes through the skeleton; the explicit
        # result must still carry the product and the lifted transitions.
        models = [model_of(APP_A), model_of(APP_B)]
        union = build_union_model(models)
        assert len(union.states) == 8  # switch x water x motion
        assert union.transitions


class TestEncoding:
    def test_shared_device_shares_one_variable_block(self):
        # Both apps hold the "sw" handle: one block, not two.
        symbolic = encode_union([model_of(APP_A), model_of(APP_B)])
        devices = [attr.device for attr in symbolic.model.attributes]
        assert devices.count("sw") == 1
        # 3 binary attributes -> 3 single-bit blocks + the fragment block.
        assert all(len(bits) == 1 for bits in symbolic._xbits)

    def test_reachable_count_matches_explicit_kripke(self):
        models = [model_of(APP_A), model_of(APP_B)]
        symbolic = encode_union(models)
        kripke = build_kripke(build_union_model(models))
        # Explicit nodes split by residual-guard src: labels and merge
        # same-label fragments; neither happens here, so counts line up.
        assert symbolic.state_count() == len(kripke.states)

    def test_initial_states_are_the_domain_product(self):
        symbolic = encode_union([model_of(APP_A), model_of(APP_B)])
        count = symbolic.bdd.count_sat(symbolic.initial) >> len(symbolic.yvars)
        assert count == 8

    def test_fragments_cover_every_rule_event_value(self):
        symbolic = encode_union([model_of(APP_A)])
        # One rule subscribed to water.wet: exactly one fragment.
        events = [f.event.label() for f in symbolic.fragments.values()]
        assert events == ["ws.water.wet"]
        (fragment,) = symbolic.fragments.values()
        assert fragment.app == "AppA"
        assert "ev:ws.water.wet" in fragment.props
        assert "act:sw.switch=off" in fragment.props
        assert "app:AppA" in fragment.props

    def test_prop_map_covers_attribute_values(self):
        symbolic = encode_union([model_of(APP_A)])
        bdd = symbolic.bdd
        wet = symbolic.prop("attr:ws.water=wet")
        dry = symbolic.prop("attr:ws.water=dry")
        assert bdd.and_(wet, dry) == bdd.FALSE
        assert symbolic.prop("attr:nothing.here=ever") == bdd.FALSE

    def test_relation_is_total_on_reachable_states(self):
        symbolic = encode_union([model_of(APP_A), model_of(APP_B)])
        bdd = symbolic.bdd
        no_succ = bdd.and_(
            symbolic.reachable,
            bdd.not_(bdd.exists(symbolic.yvars, symbolic.relation)),
        )
        assert no_succ == bdd.FALSE

    def test_post_stays_within_reachable(self):
        symbolic = encode_union([model_of(APP_A), model_of(APP_B)])
        bdd = symbolic.bdd
        escaped = bdd.and_(
            symbolic.post(symbolic.reachable), bdd.not_(symbolic.reachable)
        )
        assert escaped == bdd.FALSE

    def test_decode_roundtrip(self):
        symbolic = encode_union([model_of(APP_A)])
        assignment = symbolic.bdd.any_sat(symbolic.initial)
        node, labels = symbolic.decode(assignment)
        assert node.incoming == ()
        assert len(node.state) == len(symbolic.model.attributes)
        assert any(label.startswith("attr:") for label in labels)


class TestPartitionedEncoding:
    """The disjunctive partition must be observationally identical to the
    monolithic relation: same reachable sets, same frontiers, same images
    — only the representation (and its scaling) differs."""

    def _both(self):
        models = [model_of(APP_A), model_of(APP_B)]
        mono = encode_union(models, encoding="monolithic")
        part = encode_union(models, encoding="partitioned")
        return mono, part

    def _count(self, symbolic, f):
        return symbolic.bdd.count_sat(f) >> len(symbolic.yvars)

    def test_partitions_replace_the_relation(self):
        mono, part = self._both()
        assert mono.relation is not None and mono.partitions is None
        assert part.relation is None and part.partitions
        assert part.encoding == "partitioned"
        assert mono.encoding == "monolithic"

    def test_reachable_and_frontiers_agree(self):
        mono, part = self._both()
        assert mono.state_count() == part.state_count()
        assert len(mono.frontiers) == len(part.frontiers)
        for ring_m, ring_p in zip(mono.frontiers, part.frontiers):
            assert self._count(mono, ring_m) == self._count(part, ring_p)

    def test_images_and_preimages_agree(self):
        mono, part = self._both()
        assert self._count(mono, mono.post(mono.initial)) == self._count(
            part, part.post(part.initial)
        )
        assert self._count(mono, mono.pre(mono.reachable)) == self._count(
            part, part.pre(part.reachable)
        )

    def test_per_proposition_reachable_counts_agree(self):
        mono, part = self._both()
        assert mono.prop_map.keys() == part.prop_map.keys()
        for name in mono.prop_map:
            in_mono = mono.bdd.and_(mono.reachable, mono.prop(name))
            in_part = part.bdd.and_(part.reachable, part.prop(name))
            assert self._count(mono, in_mono) == self._count(part, in_part), name

    def test_partition_fragments_only_touch_their_own_blocks(self):
        _mono, part = self._both()
        for partition in part.partitions:
            support = part.bdd.support(partition.write_x)
            assert support <= set(partition.quant_x), (
                "write cube mentions variables outside the written blocks"
            )

    def test_auto_resolution_by_fragment_count(self):
        from repro.model.encoder import (
            PARTITION_FRAGMENT_THRESHOLD,
            resolve_encoding,
        )

        assert resolve_encoding("auto", 1) == "monolithic"
        assert (
            resolve_encoding("auto", PARTITION_FRAGMENT_THRESHOLD + 1)
            == "partitioned"
        )
        assert resolve_encoding("monolithic", 10_000) == "monolithic"
        assert resolve_encoding("partitioned", 1) == "partitioned"
        import pytest as _pytest

        with _pytest.raises(ValueError):
            resolve_encoding("fused", 1)

    SELF_WRITER = '''
definition(name: "AppC")
preferences { section("s") {
    input "sw", "capability.switch"
    input "ms", "capability.motionSensor"
    input "vd", "capability.valve"
} }
def installed() {
    subscribe(ms, "motion.active", h1)
    subscribe(sw, "switch.on", h2)
}
def h1(evt) { sw.on() }
def h2(evt) { vd.open() }
'''

    def test_written_override_disables_self_stimulation(self):
        # AppC both writes sw.on() and subscribes to switch.on.  Under
        # union semantics (app-written values re-stimulate subscribers,
        # Sec. 4.4) the switch.on fragment fires even from states already
        # "on"; the single-app symbolic path passes written=frozenset()
        # to keep the explicit extractor's fire-on-change-only semantics.
        model = model_of(self.SELF_WRITER)
        from repro.model import build_union_skeleton
        from repro.model.encoder import SymbolicUnionModel

        skeleton = build_union_skeleton([model])
        cascading = SymbolicUnionModel(skeleton)
        solo = SymbolicUnionModel(skeleton, written=frozenset())
        sw = skeleton.attribute_index("sw", "switch")
        assert sw is not None
        for symbolic, refires in ((cascading, True), (solo, False)):
            # Sources: on-states that did NOT just take the switch.on
            # transition (deadlock self-loops keep incoming labels and
            # would otherwise fake a re-fire).
            already_on = symbolic.bdd.and_(
                symbolic.bdd.and_(
                    symbolic.reachable, symbolic.value_cube(sw, "on")
                ),
                symbolic.bdd.not_(symbolic.prop("ev:sw.switch.on")),
            )
            arrived = symbolic.bdd.and_(
                symbolic.post(already_on), symbolic.prop("ev:sw.switch.on")
            )
            assert (arrived != symbolic.bdd.FALSE) is refires


class TestCheckerWitnesses:
    CONFLICT = '''
definition(name: "Conflict")
preferences { section("s") {
    input "ws", "capability.waterSensor"
    input "vd", "capability.valve"
} }
def installed() { subscribe(ws, "water.wet", h) }
def h(evt) { vd.open() }
'''

    def test_ag_counterexample_is_connected_and_decodable(self):
        symbolic = encode_union([model_of(self.CONFLICT)])
        checker = SymbolicModelChecker(symbolic)
        result = checker.check("AG !act:vd.valve=open")
        assert not result.holds
        assert result.counterexample
        first, last = result.counterexample[0], result.counterexample[-1]
        assert first.incoming == ()  # starts at an initial state
        assert "act:vd.valve=open" in checker.labels[last]
        assert result.failing_states

    def test_holding_formula_has_no_counterexample(self):
        symbolic = encode_union([model_of(self.CONFLICT)])
        checker = SymbolicModelChecker(symbolic)
        result = checker.check("AG (attr:ws.water=wet | attr:ws.water=dry)")
        assert result.holds
        assert not result.counterexample

    def test_af_lasso_extracted(self):
        # Once wet, the model deadlocks into a self-loop and never goes
        # dry again: AF dry fails with a lasso staying wet forever.
        symbolic = encode_union([model_of(self.CONFLICT)])
        checker = SymbolicModelChecker(symbolic)
        result = checker.check("AF attr:ws.water=dry")
        assert not result.holds
        stem_and_loop = result.counterexample + result.counterexample_loop
        assert stem_and_loop
        assert result.counterexample_loop  # the wet cycle
        for state in stem_and_loop:
            assert "attr:ws.water=wet" in checker.labels[state]

    def test_unknown_prop_is_false_everywhere(self):
        symbolic = encode_union([model_of(self.CONFLICT)])
        checker = SymbolicModelChecker(symbolic)
        assert not checker.check("EF prop:never=seen").holds
        assert checker.check("AG !prop:never=seen").holds
