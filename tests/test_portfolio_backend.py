"""SAT portfolio backend: parity with explicit/symbolic + engine units.

The ``bmc``/``portfolio`` backends answer through three engines — an
incremental SAT unroller over the fragment semantics
(:mod:`repro.mc.cnf`), an IC3/PDR prover (:mod:`repro.mc.ic3`), and the
BDD checker as the inconclusive-case fallback.  They only earn a place
in the pipeline if they are *indistinguishable* from the established
backends on every curated scenario, so this suite pins:

* identical violation sets and per-formula verdicts across
  ``explicit``/``symbolic``/``bmc``/``portfolio`` on every Table-4 group
  and MalIoT environment;
* BMC counterexample traces that are real paths of the explicit Kripke
  structure (valid nodes, valid edges, initial start);
* fuzz-injected violation templates caught at 100% by the three-way
  ``backend="both"`` differential;
* the engine-level building blocks: invariant-shape classification,
  linear clause growth of the union unroller, and IC3/BMC agreement
  with the explicit checker on attribute invariants.
"""

import pytest

from repro.corpus import groundtruth
from repro.corpus.batch import analyze_batch
from repro.corpus.fuzz import FuzzConfig, run_fuzz
from repro.ir import build_ir
from repro.mc import ctl
from repro.mc.bmc import Verdict
from repro.mc.cnf import BmcUnroller, CnfUnionSystem, invariant_shape
from repro.mc.explicit import check as explicit_check
from repro.mc.ic3 import IC3Prover
from repro.mc.portfolio import PortfolioChecker
from repro.model import build_kripke, build_union_model, build_union_skeleton
from repro.model.extractor import extract_model
from repro.platform.smartapp import SmartApp
from repro.soteria import analyze_environment

#: Every curated multi-app scenario of the paper (same set the
#: explicit-vs-symbolic differential suite runs).
PAPER_GROUPS = [
    pytest.param(tuple(group.apps), id=group.group_id)
    for group in groundtruth.TABLE4_GROUPS
] + [
    pytest.param(tuple(ids), id="+".join(ids))
    for ids, _prop in groundtruth.MALIOT_ENVIRONMENTS
]

_RUNS_CACHE: dict = {}


def _runs(group):
    """One explicit + symbolic + bmc + portfolio pass per group, cached
    across the parametrized tests (4 model-checking runs per group)."""
    key = tuple(group)
    if key in _RUNS_CACHE:
        return _RUNS_CACHE[key]
    analyses = analyze_batch(list(group), jobs=1)
    members = [analyses[app_id] for app_id in group]
    runs = {"explicit": analyze_environment(list(members), backend="explicit")}
    for backend in ("symbolic", "bmc", "portfolio"):
        run = analyze_environment(list(members), backend=backend)
        assert run.backend == backend
        assert run.kripke is None  # the product was never materialized
        runs[backend] = run
    _RUNS_CACHE[key] = runs
    return runs


# ======================================================================
# Four-way parity on the paper's environments
# ======================================================================
@pytest.mark.parametrize("group", PAPER_GROUPS)
def test_identical_violation_sets(group):
    runs = _runs(group)
    key = lambda v: (v.property_id, v.devices)  # noqa: E731
    reference = sorted(key(v) for v in runs["explicit"].violations)
    for backend in ("symbolic", "bmc", "portfolio"):
        found = sorted(key(v) for v in runs[backend].violations)
        assert found == reference, backend


@pytest.mark.parametrize("group", PAPER_GROUPS)
def test_per_formula_agreement(group):
    runs = _runs(group)
    explicit = runs["explicit"]
    for backend in ("bmc", "portfolio"):
        run = runs[backend]
        assert explicit.checked_properties == run.checked_properties
        assert explicit.check_results.keys() == run.check_results.keys()
        for property_id, expected in explicit.check_results.items():
            results = run.check_results[property_id]
            assert len(expected) == len(results), (backend, property_id)
            for exp, got in zip(expected, results):
                assert exp.formula == got.formula, (backend, property_id)
                assert exp.holds == got.holds, (
                    backend, property_id, str(exp.formula)
                )


@pytest.mark.parametrize("group", PAPER_GROUPS)
def test_engine_stats_recorded(group):
    """bmc/portfolio runs report how each formula was answered; the
    established backends carry no portfolio block."""
    runs = _runs(group)
    assert runs["explicit"].portfolio is None
    assert runs["symbolic"].portfolio is None
    for backend in ("bmc", "portfolio"):
        stats = runs[backend].portfolio
        assert stats is not None, backend
        answered = (
            stats["bmc_violations"]
            + stats["ic3_proofs"]
            + stats["ic3_violations"]
            + stats["fallbacks"]
        )
        assert answered == stats["formulas"], (backend, stats)
    # Where CTL checking ran at all (S-only groups stop at the general
    # checks), bmc mode must decide formulas with the SAT engines, not
    # delegate everything to the BDD fallback.
    bmc_stats = runs["bmc"].portfolio
    if bmc_stats["formulas"]:
        sat_answers = (
            bmc_stats["bmc_violations"]
            + bmc_stats["ic3_proofs"]
            + bmc_stats["ic3_violations"]
        )
        assert sat_answers > 0, bmc_stats


# ======================================================================
# BMC witnesses are explicit-Kripke paths
# ======================================================================
#: Environments with known CTL violations (S-only groups fail at model
#: construction and leave no witnesses).
WITNESS_GROUPS = [
    pytest.param(tuple(groundtruth.TABLE4_GROUPS[2].apps), id="G.3"),
] + [
    pytest.param(tuple(ids), id="+".join(ids))
    for ids, _prop in groundtruth.MALIOT_ENVIRONMENTS[:2]
]


def _norm(node):
    return (node.state, frozenset(node.incoming))


@pytest.mark.parametrize("group", WITNESS_GROUPS)
def test_bmc_witnesses_are_explicit_paths(group):
    runs = _runs(group)
    kripke = runs["explicit"].kripke
    nodes = {_norm(state) for state in kripke.states}
    edges = {
        (_norm(src), _norm(dst))
        for src, dsts in kripke.succ.items()
        for dst in dsts
    }
    initial = {_norm(state) for state in kripke.initial}
    checked = 0
    for results in runs["bmc"].check_results.values():
        for result in results:
            if result.holds or not result.counterexample:
                continue
            if result.counterexample_loop:
                continue  # AF lassos come from the BDD fallback
            path = result.counterexample
            for node in path:
                assert _norm(node) in nodes, node
            for src, dst in zip(path, path[1:]):
                assert (_norm(src), _norm(dst)) in edges, (src, dst)
            if len(path) > 1:
                assert _norm(path[0]) in initial
                checked += 1
    assert checked, "no multi-step witnesses in a known-violating group"


# ======================================================================
# Fuzz templates: the three-way differential
# ======================================================================
class TestFuzzBothBackends:
    def test_injected_violations_detected_across_all_backends(self):
        """``backend="both"`` adds a bmc pass on every generated cluster;
        every injected violation template must be caught and the bmc
        pass must agree with explicit and symbolic case by case."""
        report = run_fuzz(
            seed=11, count=4, jobs=1, config=FuzzConfig(backend="both")
        )
        assert report.config.backend == "both"
        assert report.ok, [r.detail for r in report.failures()]
        assert report.injected_total() > 0
        assert report.detection_rate() == 1.0


# ======================================================================
# Engine units: shape classification, unroller growth, IC3
# ======================================================================
APP_A = '''
definition(name: "AppA")
preferences { section("s") {
    input "sw", "capability.switch"
    input "ws", "capability.waterSensor"
} }
def installed() { subscribe(ws, "water.wet", h) }
def h(evt) { sw.off() }
'''

APP_B = '''
definition(name: "AppB")
preferences { section("s") {
    input "sw", "capability.switch"
    input "ms", "capability.motionSensor"
} }
def installed() { subscribe(ms, "motion.active", h) }
def h(evt) { sw.on() }
'''


def _skeleton():
    models = [
        extract_model(build_ir(SmartApp.from_source(APP_A))),
        extract_model(build_ir(SmartApp.from_source(APP_B))),
    ]
    return models, build_union_skeleton(models)


class TestInvariantShape:
    def test_plain_ag(self):
        shape = invariant_shape(ctl.AG(ctl.Not(ctl.Prop("p"))))
        assert shape is not None
        assert shape.context is None and shape.ex_target is None

    def test_ex_shape(self):
        formula = ctl.AG(
            ctl.Not(ctl.And(ctl.Prop("p"), ctl.EX(ctl.Prop("q"))))
        )
        shape = invariant_shape(formula)
        assert shape is not None
        assert shape.ex_target == ctl.Prop("q")
        assert shape.context is not None

    def test_implication_into_ax(self):
        # AG (p -> AX q): bad = p & EX !q.
        formula = ctl.AG(ctl.Implies(ctl.Prop("p"), ctl.AX(ctl.Prop("q"))))
        shape = invariant_shape(formula)
        assert shape is not None
        assert shape.ex_target == ctl.Not(ctl.Prop("q"))

    def test_unsupported_shapes(self):
        assert invariant_shape(ctl.EF(ctl.Prop("p"))) is None
        assert invariant_shape(ctl.AG(ctl.EF(ctl.Prop("p")))) is None
        assert invariant_shape(
            ctl.AG(ctl.EX(ctl.EX(ctl.Prop("p"))))
        ) is None


class TestUnionUnroller:
    def test_system_compiles_fragments_and_props(self):
        _models, skeleton = _skeleton()
        system = CnfUnionSystem(skeleton)
        assert system.rules and system.fragments
        assert any(name.startswith("attr:") for name in system.prop_cubes)

    def test_linear_clause_growth(self):
        _models, skeleton = _skeleton()
        unroller = BmcUnroller(CnfUnionSystem(skeleton))
        counts = []
        for depth in range(1, 6):
            unroller.ensure_depth(depth)
            counts.append(unroller.clause_count)
        deltas = [b - a for a, b in zip(counts, counts[1:])]
        assert all(d > 0 for d in deltas)
        assert len(set(deltas)) == 1  # one step's clauses per depth


class TestEngineAgreement:
    def test_bmc_mode_agrees_with_explicit_on_attribute_invariants(self):
        """Every ``AG !prop`` / ``AG prop`` over the union's attribute
        props: PortfolioChecker (bmc mode: SAT + IC3, BDD fallback) must
        return exactly the explicit checker's verdict — and never need
        the fallback for these propositional shapes."""
        models, skeleton = _skeleton()
        kripke = build_kripke(build_union_model(models))
        checker = PortfolioChecker(skeleton, mode="bmc")
        names = sorted(
            n for n in CnfUnionSystem(skeleton).prop_cubes
            if n.startswith("attr:")
        )
        assert names
        for name in names:
            for formula in (
                ctl.AG(ctl.Not(ctl.Prop(name))),
                ctl.AG(ctl.Prop(name)),
            ):
                expected = explicit_check(kripke, formula)
                got = checker.check(formula)
                assert got.holds == expected.holds, str(formula)
        # A holding invariant (tautology) exercises the IC3 proof path —
        # the product's initial states violate every single-prop AG above.
        tautology = ctl.AG(
            ctl.Or(ctl.Prop(names[0]), ctl.Not(ctl.Prop(names[0])))
        )
        assert checker.check(tautology).holds
        assert checker.stats["fallbacks"] == 0
        assert checker.stats["unsupported"] == 0
        assert checker.stats["bmc_violations"] > 0
        assert checker.stats["ic3_proofs"] >= 1

    def test_ic3_proves_unsatisfiable_bad_states(self):
        _models, skeleton = _skeleton()
        system = CnfUnionSystem(skeleton)
        # An unknown prop compiles to constant-false: the bad states are
        # unsatisfiable, so IC3 proves the invariant outright.
        shape = invariant_shape(ctl.AG(ctl.Not(ctl.Prop("no:such=prop"))))
        verdict, trace = IC3Prover(system).prove(shape)
        assert verdict is Verdict.HOLDS
        assert trace == []

    def test_portfolio_mode_rejects_unknown_modes(self):
        _models, skeleton = _skeleton()
        with pytest.raises(ValueError):
            PortfolioChecker(skeleton, mode="race")
