"""App-specific property catalog: applicability, binding, formulas."""

import pytest

from repro import analyze_app
from repro.properties.appspecific import APP_SPECIFIC_PROPERTIES
from repro.properties.catalog import default_catalog
from repro.properties.roles import device_roles
from repro.ir import build_ir
from repro.platform import SmartApp


def analysis_of(source):
    return analyze_app(source)


class TestCatalogStructure:
    def test_thirty_properties(self):
        assert len(APP_SPECIFIC_PROPERTIES) == 30
        assert [s.id for s in APP_SPECIFIC_PROPERTIES] == [
            f"P.{i}" for i in range(1, 31)
        ]

    def test_every_property_has_description_and_variant(self):
        for spec in APP_SPECIFIC_PROPERTIES:
            assert spec.description
            assert spec.variants

    def test_catalog_lookup(self):
        catalog = default_catalog()
        assert catalog.by_id("P.30").id == "P.30"
        with pytest.raises(KeyError):
            catalog.by_id("P.99")

    def test_applicability_requires_all_devices(self):
        catalog = default_catalog()
        specs = catalog.applicable({"waterSensor", "valve"}, {})
        ids = {s.id for s in specs}
        assert "P.30" in ids
        assert "P.1" not in ids  # no lock


class TestRoles:
    def test_light_role_from_handle(self):
        ir = build_ir(SmartApp.from_source('''
definition(name: "R")
preferences { section("s") {
    input "hall_light", "capability.switch"
    input "coffee_machine", "capability.switch"
    input "the_heater", "capability.switch"
    input "security_system", "capability.switch"
    input "plain", "capability.switch"
} }
def installed() { }
'''))
        roles = device_roles(ir)
        assert "light" in roles["hall_light"]
        assert "appliance" in roles["coffee_machine"]
        assert "heater" in roles["the_heater"]
        assert "critical" in roles["security_system"]
        assert roles["plain"] == {"generic"}

    def test_title_contributes_roles(self):
        ir = build_ir(SmartApp.from_source('''
definition(name: "R")
preferences { section("s") {
    input "sw1", "capability.switch", title: "The AC outlet"
} }
def installed() { }
'''))
        assert "ac" in device_roles(ir)["sw1"]


class TestPropertyVerdicts:
    def test_p30_holds_for_correct_app(self):
        analysis = analysis_of('''
definition(name: "Good")
preferences { section("s") {
    input "ws", "capability.waterSensor"
    input "vd", "capability.valve"
} }
def installed() { subscribe(ws, "water.wet", h) }
def h(evt) { vd.close() }
''')
        assert "P.30" in analysis.checked_properties
        assert not analysis.violations

    def test_p30_fails_for_inverted_app(self):
        analysis = analysis_of('''
definition(name: "Bad")
preferences { section("s") {
    input "ws", "capability.waterSensor"
    input "vd", "capability.valve"
} }
def installed() { subscribe(ws, "water.wet", h) }
def h(evt) { vd.open() }
''')
        assert "P.30" in analysis.violated_ids()
        violation = [v for v in analysis.violations if v.property_id == "P.30"][0]
        assert violation.counterexample
        assert violation.formula

    def test_p10_holds_when_alarm_clears_after_smoke(self):
        analysis = analysis_of('''
definition(name: "Alarm")
preferences { section("s") {
    input "sd", "capability.smokeDetector"
    input "al", "capability.alarm"
} }
def installed() { subscribe(sd, "smoke", h) }
def h(evt) {
    if (evt.value == "detected") { al.siren() }
    if (evt.value == "clear") { al.off() }
}
''')
        assert "P.10" in analysis.checked_properties
        assert "P.10" not in analysis.violated_ids()

    def test_p10_fails_when_alarm_killed_during_smoke(self):
        analysis = analysis_of('''
definition(name: "BadAlarm")
preferences { section("s") {
    input "sd", "capability.smokeDetector"
    input "al", "capability.alarm"
} }
def installed() { subscribe(app, appTouch, h) }
def h(evt) {
    if (sd.currentValue("smoke") == "detected") { al.off() }
}
''')
        assert "P.10" in analysis.violated_ids()

    def test_p22_holds_when_app_responds(self):
        analysis = analysis_of('''
definition(name: "Watchdog")
preferences { section("s") {
    input "bat", "capability.battery"
    input "lvl", "number"
} }
def installed() { subscribe(bat, "battery", h) }
def h(evt) {
    if (bat.currentValue("battery") < lvl) { sendPush("low!") }
}
''')
        assert "P.22" in analysis.checked_properties
        assert "P.22" not in analysis.violated_ids()

    def test_p22_fails_when_low_battery_ignored(self):
        analysis = analysis_of('''
definition(name: "Ignorer")
preferences { section("s") {
    input "bat", "capability.battery"
    input "lvl", "number"
} }
def installed() { subscribe(bat, "battery", h) }
def h(evt) {
    if (bat.currentValue("battery") < lvl) { log.debug "meh" }
}
''')
        assert "P.22" in analysis.violated_ids()

    def test_p25_bell_when_closed(self):
        analysis = analysis_of('''
definition(name: "Bell")
preferences { section("s") {
    input "door", "capability.contactSensor"
    input "bell", "capability.tone"
} }
def installed() { subscribe(door, "contact.closed", h) }
def h(evt) { bell.beep() }
''')
        assert "P.25" in analysis.violated_ids()

    def test_formula_text_recorded(self):
        analysis = analysis_of('''
definition(name: "Bad")
preferences { section("s") {
    input "ws", "capability.waterSensor"
    input "vd", "capability.valve"
} }
def installed() { subscribe(ws, "water.wet", h) }
def h(evt) { vd.open() }
''')
        violation = analysis.violations[0]
        assert "AG" in violation.formula
