"""Disk-backed analysis cache: round-trips, invalidation, batch layering."""

import pickle

import pytest

from repro import analyze_app, analyze_environment
from repro.corpus import batch
from repro.corpus.diskcache import (
    CACHE_DIR_ENV,
    PIPELINE_VERSION,
    DiskCache,
    SweepCache,
    resolve_cache_dir,
)
from repro.corpus.loader import load_app


@pytest.fixture()
def clean_batch_cache():
    batch.clear_cache()
    yield
    batch.clear_cache()


@pytest.fixture()
def o1_analysis():
    return analyze_app(load_app("O1"))


class TestRoundTrip:
    def test_put_then_get(self, tmp_path, o1_analysis):
        cache = DiskCache(tmp_path)
        cache.put("O1", "digest", o1_analysis)
        loaded = cache.get("O1", "digest")
        assert loaded is not None
        assert loaded.app.name == "O1"
        assert loaded.violated_ids() == o1_analysis.violated_ids()
        assert loaded.model.size() == o1_analysis.model.size()

    def test_miss_on_unknown_key(self, tmp_path):
        cache = DiskCache(tmp_path)
        assert cache.get("O1", "nope") is None

    def test_miss_on_other_digest(self, tmp_path, o1_analysis):
        cache = DiskCache(tmp_path)
        cache.put("O1", "digest-a", o1_analysis)
        assert cache.get("O1", "digest-b") is None

    def test_stats_track_hits_misses_writes(self, tmp_path, o1_analysis):
        cache = DiskCache(tmp_path)
        cache.get("O1", "digest")
        cache.put("O1", "digest", o1_analysis)
        cache.get("O1", "digest")
        assert cache.stats() == {
            "entries": 1,
            "hits": 1,
            "misses": 1,
            "writes": 1,
        }


class TestInvalidation:
    def test_stale_pipeline_version_misses(self, tmp_path, o1_analysis):
        old = DiskCache(tmp_path, version="0-stale")
        old.put("O1", "digest", o1_analysis)
        current = DiskCache(tmp_path)
        assert current.get("O1", "digest") is None
        assert current.entries() == []

    def test_entries_scoped_to_current_version(self, tmp_path, o1_analysis):
        DiskCache(tmp_path, version="0-stale").put("O1", "digest", o1_analysis)
        current = DiskCache(tmp_path)
        current.put("O1", "digest", o1_analysis)
        assert len(current.entries()) == 1
        assert f"v{PIPELINE_VERSION}" in str(current.entries()[0])

    def test_prune_removes_stale_versions_only(self, tmp_path, o1_analysis):
        DiskCache(tmp_path, version="0-stale").put("O1", "digest", o1_analysis)
        current = DiskCache(tmp_path)
        current.put("O1", "digest", o1_analysis)
        assert current.prune() == 1
        assert not (tmp_path / "v0-stale").exists()
        assert current.get("O1", "digest") is not None

    def test_corrupt_entry_is_a_miss_and_removed(self, tmp_path, o1_analysis):
        cache = DiskCache(tmp_path)
        path = cache.path_for("O1", "digest")
        path.parent.mkdir(parents=True)
        path.write_bytes(b"not a pickle")
        assert cache.get("O1", "digest") is None
        assert not path.exists()

    def test_wrong_payload_type_is_a_miss(self, tmp_path):
        cache = DiskCache(tmp_path)
        path = cache.path_for("O1", "digest")
        path.parent.mkdir(parents=True)
        path.write_bytes(pickle.dumps({"not": "an analysis"}))
        assert cache.get("O1", "digest") is None


class TestSweepCacheInvalidation:
    """Sweep-level entries must die with the pipeline version and with
    any member source change — a stale union verdict served after either
    would silently mask regressions."""

    @pytest.fixture()
    def environment(self, o1_analysis):
        return analyze_environment([o1_analysis])

    DIGESTS = ["digest-a", "digest-b"]

    def test_round_trip_on_same_digests(self, tmp_path, environment):
        cache = SweepCache(tmp_path)
        cache.put(self.DIGESTS, environment)
        loaded = cache.get(self.DIGESTS)
        assert loaded is not None
        assert loaded.violated_ids() == environment.violated_ids()
        assert cache.stats()["hits"] == 1

    def test_pipeline_version_bump_invalidates(self, tmp_path, environment):
        old = SweepCache(tmp_path, version="0-stale")
        old.put(self.DIGESTS, environment)
        current = SweepCache(tmp_path)
        assert current.get(self.DIGESTS) is None
        assert current.stats() == {
            "entries": 0, "hits": 0, "misses": 1, "writes": 0,
        }
        # The stale entry still exists under its own version directory —
        # invalidation is by unreachability, not deletion.
        assert old.entries()

    def test_member_digest_change_invalidates(self, tmp_path, environment):
        cache = SweepCache(tmp_path)
        cache.put(self.DIGESTS, environment)
        assert cache.get(["digest-a", "digest-EDITED"]) is None
        assert cache.get(["digest-a"]) is None  # membership change too
        assert cache.misses == 2
        # The untouched group is still served.
        assert cache.get(self.DIGESTS) is not None

    def test_prune_clears_stale_sweep_versions(self, tmp_path, environment):
        SweepCache(tmp_path, version="0-stale").put(self.DIGESTS, environment)
        current = SweepCache(tmp_path)
        current.put(self.DIGESTS, environment)
        assert DiskCache(tmp_path).prune() >= 1
        assert not (tmp_path / "v0-stale").exists()
        assert current.get(self.DIGESTS) is not None


class TestResolveCacheDir:
    def test_explicit_wins(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "env"))
        assert resolve_cache_dir(tmp_path / "arg") == tmp_path / "arg"

    def test_env_fallback(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "env"))
        assert resolve_cache_dir(None) == tmp_path / "env"

    def test_none_without_env(self, monkeypatch):
        monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
        assert resolve_cache_dir(None) is None
        monkeypatch.setenv(CACHE_DIR_ENV, "   ")
        assert resolve_cache_dir(None) is None


class TestBatchLayering:
    def test_cold_run_populates_disk(self, tmp_path, clean_batch_cache):
        batch.analyze_batch(["O1", "O2"], jobs=1, cache_dir=tmp_path)
        assert len(DiskCache(tmp_path).entries()) == 2
        info = batch.cache_info()
        assert info["misses"] == 2
        assert info["disk_hits"] == 0

    def test_fresh_process_simulation_hits_disk(
        self, tmp_path, clean_batch_cache, monkeypatch
    ):
        batch.analyze_batch(["O1", "O2"], jobs=1, cache_dir=tmp_path)
        # A fresh process has an empty in-memory cache; analysis must not
        # run again — everything comes off disk.
        batch.clear_cache()

        def boom(*_args, **_kwargs):
            raise AssertionError("analysis re-ran despite a warm disk cache")

        monkeypatch.setattr(batch, "_analyze_one", boom)
        results = batch.analyze_batch(["O1", "O2"], jobs=1, cache_dir=tmp_path)
        assert set(results) == {"O1", "O2"}
        info = batch.cache_info()
        assert info["disk_hits"] == 2
        assert info["misses"] == 0

    def test_memory_layer_preferred_over_disk(self, tmp_path, clean_batch_cache):
        first = batch.analyze_batch(["O1"], jobs=1, cache_dir=tmp_path)["O1"]
        second = batch.analyze_batch(["O1"], jobs=1, cache_dir=tmp_path)["O1"]
        assert first is second  # unpickling would return a new object
        assert batch.cache_info()["memory_hits"] == 1

    def test_cache_dir_env_variable_used(
        self, tmp_path, clean_batch_cache, monkeypatch
    ):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path))
        batch.analyze_batch(["O1"], jobs=1)
        assert len(DiskCache(tmp_path).entries()) == 1

    def test_no_cache_dir_writes_nothing(
        self, tmp_path, clean_batch_cache, monkeypatch
    ):
        monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
        batch.analyze_batch(["O1"], jobs=1)
        assert DiskCache(tmp_path).entries() == []

    def test_unwritable_cache_degrades_not_crashes(
        self, tmp_path, clean_batch_cache, monkeypatch
    ):
        # A read-only or full cache volume must not fail the analysis
        # that produced the result — persisting is best-effort.
        def refuse(self, *_args, **_kwargs):
            raise PermissionError("read-only cache volume")

        monkeypatch.setattr(DiskCache, "put", refuse)
        results = batch.analyze_batch(["O1"], jobs=1, cache_dir=tmp_path)
        assert set(results) == {"O1"}
        assert DiskCache(tmp_path).entries() == []

    def test_clear_cache_resets_counters(self, tmp_path, clean_batch_cache):
        batch.analyze_batch(["O1"], jobs=1, cache_dir=tmp_path)
        batch.clear_cache()
        info = batch.cache_info()
        assert info == {
            "entries": 0,
            "hits": 0,
            "memory_hits": 0,
            "disk_hits": 0,
            "misses": 0,
        }


class TestResolveJobs:
    def test_non_numeric_env_raises_naming_variable(self, monkeypatch):
        monkeypatch.setenv(batch._JOBS_ENV, "many")
        with pytest.raises(ValueError, match="REPRO_BATCH_JOBS"):
            batch._resolve_jobs(None, pending=10)

    def test_negative_env_raises_naming_variable(self, monkeypatch):
        monkeypatch.setenv(batch._JOBS_ENV, "-2")
        with pytest.raises(ValueError, match="REPRO_BATCH_JOBS"):
            batch._resolve_jobs(None, pending=10)

    def test_valid_env_respected(self, monkeypatch):
        monkeypatch.setenv(batch._JOBS_ENV, " 3 ")
        assert batch._resolve_jobs(None, pending=10) == 3

    def test_zero_env_means_serial(self, monkeypatch):
        monkeypatch.setenv(batch._JOBS_ENV, "0")
        assert batch._resolve_jobs(None, pending=10) == 1

    def test_explicit_jobs_skip_env(self, monkeypatch):
        monkeypatch.setenv(batch._JOBS_ENV, "garbage")
        assert batch._resolve_jobs(2, pending=10) == 2

    def test_negative_explicit_jobs_raise_like_env(self):
        with pytest.raises(ValueError, match="non-negative"):
            batch._resolve_jobs(-3, pending=10)

    def test_small_pending_forces_serial(self, monkeypatch):
        monkeypatch.delenv(batch._JOBS_ENV, raising=False)
        assert batch._resolve_jobs(8, pending=2) == 1

    def test_min_parallel_override_for_expensive_tasks(self, monkeypatch):
        # The sweep engine pools even two union checks.
        monkeypatch.delenv(batch._JOBS_ENV, raising=False)
        assert batch._resolve_jobs(8, pending=2, min_parallel=2) == 2
