"""Cross-cutting invariants over the pipeline (integration level)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.ir import build_ir
from repro.mc import parse_ctl
from repro.mc.explicit import ExplicitChecker
from repro.model import build_kripke, build_union_model, extract_model
from repro.model.kripke import KripkeState, KripkeStructure
from repro.platform import SmartApp
from repro.platform.events import EventKind

APP_A = '''
definition(name: "A")
preferences { section("s") {
    input "the_switch", "capability.switch", required: true
    input "the_contact", "capability.contactSensor", required: true
} }
def installed(){ subscribe(the_contact, "contact.open", h) }
def h(evt){ the_switch.on() }
'''

APP_B = '''
definition(name: "B")
preferences { section("s") {
    input "the_switch", "capability.switch", required: true
    input "the_motion", "capability.motionSensor", required: true
} }
def installed(){ subscribe(the_motion, "motion.active", h) }
def h(evt){ the_switch.off() }
'''


def model_of(source):
    return extract_model(build_ir(SmartApp.from_source(source)))


class TestModelInvariants:
    @pytest.mark.parametrize("source", [APP_A, APP_B])
    def test_transitions_reference_valid_states(self, source):
        model = model_of(source)
        states = set(model.states)
        for t in model.transitions:
            assert t.source in states
            assert t.target in states

    @pytest.mark.parametrize("source", [APP_A, APP_B])
    def test_device_event_moves_event_attribute(self, source):
        model = model_of(source)
        for t in model.transitions:
            if t.event.kind is EventKind.DEVICE and t.event.value is not None:
                index = model.attribute_index(t.event.device, t.event.attribute)
                assert t.target[index] == t.event.value

    @pytest.mark.parametrize("source", [APP_A, APP_B])
    def test_extraction_is_deterministic(self, source):
        first = model_of(source)
        second = model_of(source)
        assert first.states == second.states
        assert first.transitions == second.transitions

    def test_state_count_is_domain_product(self):
        model = model_of(APP_A)
        product = 1
        for attr in model.attributes:
            product *= len(attr.domain)
        assert model.size() == product


class TestUnionInvariants:
    def test_union_projection_soundness(self):
        """Every union transition of app X, projected onto X's attributes,
        matches a transition of X's own model (up to re-stimulation)."""
        a, b = model_of(APP_A), model_of(APP_B)
        union = build_union_model([a, b])

        def project(state, base_model, union_model):
            values = []
            for attr in base_model.attributes:
                idx = union_model.attribute_index(attr.device, attr.attribute)
                values.append(state[idx])
            return tuple(values)

        own = {
            "A": {(t.source, t.target, t.event.label()) for t in a.transitions},
            "B": {(t.source, t.target, t.event.label()) for t in b.transitions},
        }
        base = {"A": a, "B": b}
        for t in union.transitions:
            model = base[t.app]
            key = (
                project(t.source, model, union),
                project(t.target, model, union),
                t.event.label(),
            )
            src, dst, label = key
            # Either an exact projected transition, or a re-stimulated one
            # (source already carries the event value).
            assert key in own[t.app] or src == dst or any(
                (s, dst, label) in own[t.app] for s in model.states
            )

    def test_union_is_commutative_in_states(self):
        a, b = model_of(APP_A), model_of(APP_B)
        ab = build_union_model([a, b])
        ba = build_union_model([b, a])
        assert ab.size() == ba.size()
        assert len(ab.transitions) == len(ba.transitions)


class TestKripkeInvariants:
    def test_attr_labels_match_state(self):
        model = model_of(APP_A)
        kripke = build_kripke(model)
        for node in kripke.states:
            for attr, value in zip(model.attributes, node.state):
                prop = f"attr:{attr.device}.{attr.attribute}={value}"
                assert prop in kripke.labels[node]

    def test_every_noninitial_node_has_event_prop(self):
        model = model_of(APP_A)
        kripke = build_kripke(model)
        for node in kripke.states:
            if node.incoming:
                assert any(p.startswith("ev:") for p in kripke.labels[node])


# ----------------------------------------------------------------------
# CTL dualities on random structures (semantic self-consistency).
# ----------------------------------------------------------------------
def _random_kripke(seed):
    rng = random.Random(seed)
    n = rng.randint(3, 8)
    states = [KripkeState(state=(str(i),), incoming=()) for i in range(n)]
    kripke = KripkeStructure()
    kripke.states = states
    kripke.initial = [states[0]]
    for s in states:
        kripke.succ[s] = rng.sample(states, k=rng.randint(1, min(3, n)))
        kripke.labels[s] = frozenset(
            p for p in ("p", "q") if rng.random() < 0.5
        )
    return kripke


_DUALITIES = [
    ("AG p", "!(E [ true U !p ])"),
    ("AF p", "!EG !p"),
    ("AX p", "!EX !p"),
    ("EF p", "E [ true U p ]"),
    ("AG (p -> q)", "!EF (p & !q)"),
]


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=5000))
def test_ctl_dualities(seed):
    kripke = _random_kripke(seed)
    checker = ExplicitChecker(kripke)
    for left, right in _DUALITIES:
        assert checker.sat(parse_ctl(left)) == checker.sat(parse_ctl(right)), (
            left,
            right,
        )


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=5000))
def test_ctl_monotonicity_ef_subsumes_prop(seed):
    kripke = _random_kripke(seed)
    checker = ExplicitChecker(kripke)
    prop = checker.sat(parse_ctl("p"))
    ef = checker.sat(parse_ctl("EF p"))
    ag = checker.sat(parse_ctl("AG p"))
    assert prop <= ef
    assert ag <= prop
