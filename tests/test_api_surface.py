"""Odds and ends: public-API helpers, CLI corpus command, package exports."""

import pytest

import repro
from repro import analyze_app
from repro.cli import main
from repro.platform.events import EventKind


WATER = '''
definition(name: "W")
preferences { section("s") {
    input "ws", "capability.waterSensor"
    input "vd", "capability.valve"
} }
def installed() { subscribe(ws, "water.wet", h) }
def h(evt) { vd.close() }
'''


class TestPackageExports:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_top_level_names(self):
        for name in (
            "analyze_app",
            "analyze_environment",
            "SmartApp",
            "Violation",
            "AppAnalysis",
            "EnvironmentAnalysis",
        ):
            assert hasattr(repro, name), name


class TestStateModelHelpers:
    @pytest.fixture(scope="class")
    def model(self):
        return analyze_app(WATER).model

    def test_events_enumerated(self, model):
        events = model.events()
        assert len(events) == 1
        assert events[0].kind is EventKind.DEVICE
        assert events[0].value == "wet"

    def test_out_transitions(self, model):
        source = ("dry", "open")
        outs = model.out_transitions(source)
        assert len(outs) == 1
        assert outs[0].target == ("wet", "closed")

    def test_all_rules_flattened(self, model):
        rules = model.all_rules()
        assert len(rules) == 1
        assert rules[0].entry.handler == "h"

    def test_value_in_unknown_attribute(self, model):
        assert model.value_in(model.states[0], "nope", "x") is None

    def test_attribute_index_miss(self, model):
        assert model.attribute_index("ws", "wrong") is None


class TestViolationRecord:
    def test_short_rendering(self):
        analysis = analyze_app(WATER.replace("close()", "open()"))
        text = analysis.violations[0].short()
        assert text.startswith("[P.")
        assert "W" in text


class TestCliCorpus:
    def test_corpus_maliot_lists_every_app(self, capsys):
        code = main(["corpus", "maliot"])
        out = capsys.readouterr().out
        # MalIoT apps violate properties, and `corpus` signals findings in
        # its exit status just like `analyze` and `env`.
        assert code == 1
        for i in range(1, 18):
            assert f"App{i} " in out or f"App{i}\t" in out or f"App{i}" in out
        assert "VIOLATIONS" in out


class TestAnalysisReuse:
    def test_smartapp_instance_accepted(self):
        from repro.platform import SmartApp

        app = SmartApp.from_source(WATER, name="named")
        analysis = analyze_app(app)
        assert analysis.app.name == "named"

    def test_timings_positive(self):
        analysis = analyze_app(WATER)
        assert all(t >= 0 for t in analysis.timings.values())
