"""String-analysis refinement of reflective calls (paper Sec. 7 extension).

The paper's limitation: "Soteria constructs an imprecise call graph that
allows a reflective call to target any method... We plan to explore string
analysis to statically identify possible values of strings and refine the
target sets of method calls by reflection."  This reproduction implements
that refinement: constant-resolvable GString names call exactly one target.
"""

import pytest

from repro import analyze_app
from repro.analysis.symexec import SymbolicExecutor
from repro.ir import build_ir
from repro.platform import SmartApp

HEADER = '''
definition(name: "R")
preferences {
    section("S") {
        input "the_alarm", "capability.alarm", required: true
    }
}
'''


def rules_for(source, refine=True):
    ir = build_ir(SmartApp.from_source(source))
    exe = SymbolicExecutor(ir, refine_reflection=refine)
    result = exe.run_all()
    return [s for group in result.values() for s in group]


class TestConstantNameRefinement:
    SOURCE = HEADER + '''
def installed() { subscribe(app, appTouch, h) }
def h(evt) {
    def m = "armIt"
    "$m"()
}
def armIt() { the_alarm.siren() }
def calmIt() { the_alarm.off() }
'''

    def test_single_target_resolved(self):
        summaries = rules_for(self.SOURCE)
        values = {a.value for s in summaries for a in s.actions}
        assert values == {"siren"}  # calmIt() is NOT explored

    def test_refined_call_is_not_flagged_reflective(self):
        summaries = rules_for(self.SOURCE)
        assert all(not s.uses_reflection for s in summaries)
        assert all(
            not a.via_reflection for s in summaries for a in s.actions
        )

    def test_refinement_can_be_disabled(self):
        summaries = rules_for(self.SOURCE, refine=False)
        values = {a.value for s in summaries for a in s.actions}
        assert values == {"siren", "off"}  # classic over-approximation
        assert any(s.uses_reflection for s in summaries)


class TestUnresolvableNamesStillFanOut:
    SOURCE = HEADER + '''
def installed() { subscribe(app, appTouch, h) }
def h(evt) {
    httpGet("http://x") { resp -> state.m = resp.data.toString() }
    "$state.m"()
}
def armIt() { the_alarm.siren() }
def calmIt() { the_alarm.off() }
'''

    def test_runtime_name_over_approximated(self):
        summaries = rules_for(self.SOURCE)
        values = {a.value for s in summaries for a in s.actions}
        assert values == {"siren", "off"}

    def test_over_approximated_paths_marked(self):
        summaries = rules_for(self.SOURCE)
        assert all(
            a.via_reflection for s in summaries for a in s.actions
        )


class TestNonexistentTarget:
    SOURCE = HEADER + '''
def installed() { subscribe(app, appTouch, h) }
def h(evt) {
    def m = "noSuchMethod"
    "$m"()
    the_alarm.both()
}
def armIt() { the_alarm.siren() }
'''

    def test_unknown_name_calls_nothing(self):
        summaries = rules_for(self.SOURCE)
        values = {a.value for s in summaries for a in s.actions}
        assert values == {"both"}


class TestEndToEndPrecision:
    def test_refined_app_not_false_positive(self):
        """An App5-shaped app whose reflective name is a path constant is
        now verified clean — the refinement removes the false positive."""
        analysis = analyze_app(HEADER + '''
preferences { section("x") {
    input "smoke_detector", "capability.smokeDetector", required: true
} }
def installed() {
    subscribe(smoke_detector, "smoke", smokeHandler)
    subscribe(app, appTouch, touchHandler)
}
def smokeHandler(evt) {
    if (evt.value == "detected") { the_alarm.siren() }
}
def touchHandler(evt) {
    def target = "statusReport"
    "$target"()
}
def statusReport() { log.debug "all quiet" }
def stopAlarm() {
    if (smoke_detector.currentValue("smoke") == "detected") { the_alarm.off() }
}
''')
        assert not analysis.violations

    def test_maliot_app5_false_positive_preserved(self):
        """App5's name comes from an HTTP response: the refinement cannot
        resolve it, so the paper's false positive remains."""
        from repro.corpus.loader import load_app

        analysis = analyze_app(load_app("App5"))
        assert analysis.violated_ids() == {"P.10"}
        assert all(v.via_reflection for v in analysis.violations)
