"""Symbolic value domain and predicate atoms."""

import pytest

from repro.analysis.predicates import (
    Atom,
    condition_sources,
    negate_atom,
    normalize_atom,
    render_condition,
)
from repro.analysis.values import (
    Arith,
    Const,
    DeviceRead,
    EventValue,
    StateVar,
    Unknown,
    UserInput,
    fold_arith,
    source_label,
)


class TestSourceLabels:
    def test_constant_is_developer_defined(self):
        assert source_label(Const(50)) == "developer-defined"

    def test_user_input(self):
        assert source_label(UserInput("thrshld")) == "user-defined"

    def test_device_read(self):
        assert source_label(DeviceRead("meter", "power")) == "device-state"

    def test_state_variable(self):
        assert source_label(StateVar("state.counter")) == "state-variable"

    def test_event(self):
        assert source_label(EventValue()) == "event"

    def test_arith_prefers_non_developer(self):
        mixed = Arith("+", UserInput("y"), Const(10))
        assert source_label(mixed) == "user-defined"

    def test_unknown(self):
        assert source_label(Unknown("x")) == "unknown"


class TestFoldArith:
    @pytest.mark.parametrize(
        "op,left,right,expected",
        [
            ("+", 2, 3, 5),
            ("-", 5, 2, 3),
            ("*", 4, 3, 12),
            ("/", 8, 2, 4),
            ("%", 7, 3, 1),
            ("**", 2, 3, 8),
        ],
    )
    def test_numeric_folding(self, op, left, right, expected):
        result = fold_arith(op, Const(left), Const(right))
        assert isinstance(result, Const)
        assert result.value == expected

    def test_division_by_zero_is_unknown(self):
        assert isinstance(fold_arith("/", Const(1), Const(0)), Unknown)

    def test_string_concatenation(self):
        result = fold_arith("+", Const("a"), Const("b"))
        assert result == Const("ab")

    def test_symbolic_stays_symbolic(self):
        result = fold_arith("+", UserInput("y"), Const(10))
        assert isinstance(result, Arith)

    def test_keys_are_stable(self):
        a = Arith("+", UserInput("y"), Const(10))
        b = Arith("+", UserInput("y"), Const(10))
        assert a.key() == b.key()


class TestAtoms:
    def test_invalid_operator_rejected(self):
        with pytest.raises(ValueError):
            Atom(lhs=Const(1), op="~~", rhs=Const(2))

    @pytest.mark.parametrize(
        "op,negated",
        [("==", "!="), ("!=", "=="), ("<", ">="), (">", "<="),
         ("<=", ">"), (">=", "<"), ("truthy", "falsy")],
    )
    def test_negation(self, op, negated):
        atom = Atom(lhs=UserInput("x"), op=op)
        assert negate_atom(atom).op == negated

    def test_double_negation_is_identity(self):
        atom = Atom(lhs=UserInput("x"), op="<", rhs=Const(5))
        assert negate_atom(negate_atom(atom)) == atom

    def test_normalize_swaps_constant_left(self):
        atom = Atom(lhs=Const(5), op="<", rhs=DeviceRead("m", "power"))
        fixed = normalize_atom(atom)
        assert isinstance(fixed.lhs, DeviceRead)
        assert fixed.op == ">"

    def test_normalize_keeps_correct_orientation(self):
        atom = Atom(lhs=DeviceRead("m", "power"), op=">", rhs=Const(50))
        assert normalize_atom(atom) == atom

    def test_render(self):
        atom = Atom(lhs=DeviceRead("m", "power"), op=">", rhs=Const(50))
        assert render_condition((atom,)) == "device:m.power > const:50"

    def test_sources(self):
        atom = Atom(lhs=DeviceRead("m", "power"), op=">", rhs=UserInput("t"))
        assert condition_sources((atom,)) == {"device-state", "user-defined"}
