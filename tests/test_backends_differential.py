"""Differential backend validation: symbolic vs explicit union checking.

The symbolic (BDD) backend exists so oversized interaction clusters can be
checked at all — which only counts if it is *trustworthy*.  This suite
runs every Table-4 group and every MalIoT environment through both
backends — and through *both symbolic relation encodings* (monolithic
and partitioned), a three-way differential — and asserts

* identical violation sets — same (property, devices) pairs, and
* property-level agreement per formula: for every catalog property, the
  per-binding ``holds`` verdicts must match formula by formula, not just
  in aggregate.

Witness traces are not asserted equal: counterexamples are not unique,
and the two backends legitimately pick different (equally valid) paths —
which is also why the trace-derived ``apps`` attribution may differ.
"""

import pytest

from repro.corpus import groundtruth
from repro.corpus.batch import analyze_batch
from repro.soteria import analyze_environment

#: Every curated multi-app scenario of the paper: the three Table-4
#: groups and the three Appendix-C MalIoT environments.
PAPER_GROUPS = [
    pytest.param(group.apps, id=group.group_id)
    for group in groundtruth.TABLE4_GROUPS
] + [
    pytest.param(ids, id="+".join(ids))
    for ids, _prop in groundtruth.MALIOT_ENVIRONMENTS
]


def _both_backends(group):
    analyses = analyze_batch(list(group), jobs=1)
    members = [analyses[app_id] for app_id in group]
    explicit = analyze_environment(list(members), backend="explicit")
    symbolic = analyze_environment(list(members), backend="symbolic")
    assert explicit.backend == "explicit"
    assert symbolic.backend == "symbolic"
    assert symbolic.kripke is None  # the product was never materialized
    return explicit, symbolic


@pytest.mark.parametrize("group", PAPER_GROUPS)
def test_identical_violation_sets(group):
    explicit, symbolic = _both_backends(group)
    key = lambda v: (v.property_id, v.devices)  # noqa: E731
    assert sorted(key(v) for v in explicit.violations) == sorted(
        key(v) for v in symbolic.violations
    )


@pytest.mark.parametrize("group", PAPER_GROUPS)
def test_per_formula_agreement(group):
    explicit, symbolic = _both_backends(group)
    assert explicit.checked_properties == symbolic.checked_properties
    assert explicit.check_results.keys() == symbolic.check_results.keys()
    for property_id, explicit_results in explicit.check_results.items():
        symbolic_results = symbolic.check_results[property_id]
        assert len(explicit_results) == len(symbolic_results), property_id
        for exp, sym in zip(explicit_results, symbolic_results):
            assert exp.formula == sym.formula, property_id
            assert exp.holds == sym.holds, (property_id, str(exp.formula))


@pytest.mark.parametrize("group", PAPER_GROUPS)
def test_same_state_estimate(group):
    explicit, symbolic = _both_backends(group)
    assert explicit.state_estimate == symbolic.state_estimate
    # The explicit product is exactly the estimate — the number the
    # symbolic backend reports without ever enumerating it.
    assert explicit.union_model.size() == explicit.state_estimate
    assert symbolic.union_model.states == []


_THREE_WAY_CACHE: dict = {}


def _three_way(group):
    """Explicit vs symbolic/monolithic vs symbolic/partitioned.

    Cached per group: the two three-way test functions share one run of
    the suite's most expensive section (3 model-checking passes/group).
    """
    key = tuple(group)
    if key in _THREE_WAY_CACHE:
        return _THREE_WAY_CACHE[key]
    analyses = analyze_batch(list(group), jobs=1)
    members = [analyses[app_id] for app_id in group]
    explicit = analyze_environment(list(members), backend="explicit")
    runs = {"explicit": explicit}
    for encoding in ("monolithic", "partitioned"):
        run = analyze_environment(
            list(members), backend="symbolic", encoding=encoding
        )
        assert run.backend == "symbolic"
        assert run.encoding == encoding       # forced, not auto-resolved
        assert run.kripke is None
        runs[encoding] = run
    _THREE_WAY_CACHE[key] = runs
    return runs


@pytest.mark.parametrize("group", PAPER_GROUPS)
def test_three_way_identical_violation_sets(group):
    """Both relation encodings must match the explicit oracle exactly."""
    runs = _three_way(group)
    key = lambda v: (v.property_id, v.devices)  # noqa: E731
    reference = sorted(key(v) for v in runs["explicit"].violations)
    for encoding in ("monolithic", "partitioned"):
        found = sorted(key(v) for v in runs[encoding].violations)
        assert found == reference, encoding


@pytest.mark.parametrize("group", PAPER_GROUPS)
def test_three_way_per_formula_agreement(group):
    runs = _three_way(group)
    explicit = runs["explicit"]
    for encoding in ("monolithic", "partitioned"):
        symbolic = runs[encoding]
        assert explicit.checked_properties == symbolic.checked_properties
        assert explicit.check_results.keys() == symbolic.check_results.keys()
        for property_id, explicit_results in explicit.check_results.items():
            symbolic_results = symbolic.check_results[property_id]
            assert len(explicit_results) == len(symbolic_results), (
                encoding, property_id
            )
            for exp, sym in zip(explicit_results, symbolic_results):
                assert exp.formula == sym.formula, (encoding, property_id)
                assert exp.holds == sym.holds, (
                    encoding, property_id, str(exp.formula)
                )


def test_partitioned_encoding_skips_the_monolithic_relation():
    """The partitioned run must never build the fused relation BDD."""
    ids, _prop = groundtruth.MALIOT_ENVIRONMENTS[0]
    analyses = analyze_batch(list(ids), jobs=1)
    from repro.model.encoder import SymbolicUnionModel
    from repro.model.union import build_union_skeleton

    skeleton = build_union_skeleton([analyses[a].model for a in ids])
    symbolic = SymbolicUnionModel(skeleton, encoding="partitioned")
    assert symbolic.relation is None
    assert symbolic.partitions
    monolithic = SymbolicUnionModel(skeleton, encoding="monolithic")
    assert monolithic.relation is not None
    assert monolithic.partitions is None
    assert symbolic.state_count() == monolithic.state_count()


def test_failing_symbolic_traces_are_decodable():
    """Symbolic counterexamples must decode to real model states so the
    report pipeline (state labels, app attribution) works unchanged."""
    ids, prop = groundtruth.MALIOT_ENVIRONMENTS[0]  # App12-14, P.3
    analyses = analyze_batch(list(ids), jobs=1)
    symbolic = analyze_environment(
        [analyses[a] for a in ids], backend="symbolic"
    )
    violation = next(v for v in symbolic.violations if v.property_id == prop)
    assert violation.counterexample  # rendered state labels
    assert all(step.startswith("[") for step in violation.counterexample)
    assert violation.apps  # trace-derived attribution found culprits


# ----------------------------------------------------------------------
# Cross-kernel differential: the reference dict-of-nodes manager is the
# oracle for the array-backed fast kernel on every paper scenario.
# ----------------------------------------------------------------------
_CROSS_KERNEL_CACHE: dict = {}


def _both_kernels(group):
    """One symbolic run per kernel over the same members, cached."""
    key = tuple(group)
    if key in _CROSS_KERNEL_CACHE:
        return _CROSS_KERNEL_CACHE[key]
    analyses = analyze_batch(list(group), jobs=1)
    members = [analyses[app_id] for app_id in group]
    runs = {}
    for kernel in ("reference", "fast"):
        run = analyze_environment(
            list(members), backend="symbolic", kernel=kernel
        )
        assert run.backend == "symbolic"
        assert run.kernel == kernel           # forced, not auto-resolved
        assert run.kernel_stats is not None
        assert run.kernel_stats["kernel"] == kernel
        runs[kernel] = run
    _CROSS_KERNEL_CACHE[key] = runs
    return runs


@pytest.mark.parametrize("group", PAPER_GROUPS)
def test_cross_kernel_identical_violation_sets(group):
    runs = _both_kernels(group)
    key = lambda v: (v.property_id, v.devices)  # noqa: E731
    reference = sorted(key(v) for v in runs["reference"].violations)
    fast = sorted(key(v) for v in runs["fast"].violations)
    assert fast == reference


@pytest.mark.parametrize("group", PAPER_GROUPS)
def test_cross_kernel_per_formula_agreement(group):
    runs = _both_kernels(group)
    reference, fast = runs["reference"], runs["fast"]
    assert reference.checked_properties == fast.checked_properties
    assert reference.check_results.keys() == fast.check_results.keys()
    for property_id, reference_results in reference.check_results.items():
        fast_results = fast.check_results[property_id]
        assert len(reference_results) == len(fast_results), property_id
        for ref, fst in zip(reference_results, fast_results):
            assert ref.formula == fst.formula, property_id
            assert ref.holds == fst.holds, (property_id, str(ref.formula))


def test_auto_kernel_matches_the_reference_oracle():
    """The default (auto -> fast) path is covered by the oracle too."""
    ids, _prop = groundtruth.MALIOT_ENVIRONMENTS[0]
    analyses = analyze_batch(list(ids), jobs=1)
    members = [analyses[a] for a in ids]
    auto = analyze_environment(list(members), backend="symbolic")
    reference = analyze_environment(
        list(members), backend="symbolic", kernel="reference"
    )
    assert auto.kernel == "fast"
    key = lambda v: (v.property_id, v.devices)  # noqa: E731
    assert sorted(key(v) for v in auto.violations) == sorted(
        key(v) for v in reference.violations
    )
