"""Fleet screening driver: sampling, dedup, telemetry, and exit codes."""

import pytest

from repro.corpus.diskcache import FleetCache
from repro.corpus.loader import registered_ids
from repro.fleet.driver import (
    FLEET_MAX_UNION_STATES,
    FleetOptions,
    FleetResult,
    run_fleet,
)
from repro.fleet.profiles import FleetProfile, TemplatePool, sample_stream
from repro.fleet.telemetry import FleetTelemetry, HouseholdVerdict

#: Small profile: a handful of canonical forms, so a serial run stays
#: in the hundreds of milliseconds.
SMALL = FleetProfile(seed=7, templates=4, variants=2)
COUNT = 300


@pytest.fixture(scope="module")
def small_run():
    return run_fleet(SMALL, COUNT, FleetOptions(jobs=1))


class TestSampling:
    def test_stream_is_deterministic(self):
        first = list(sample_stream(SMALL, 50))
        second = list(sample_stream(SMALL, 50))
        assert first == second

    def test_stream_respects_pool_bounds(self):
        for _index, template, variant in sample_stream(SMALL, 200):
            assert 0 <= template < SMALL.templates
            assert 0 <= variant < SMALL.variants

    def test_different_seed_different_stream(self):
        other = FleetProfile(seed=8, templates=4, variants=2)
        assert list(sample_stream(SMALL, 50)) != list(sample_stream(other, 50))


class TestTelemetry:
    def test_counts_are_consistent(self, small_run):
        telemetry = small_run.telemetry
        assert telemetry.households == COUNT
        assert telemetry.canonical_distinct <= telemetry.byte_distinct
        assert telemetry.byte_distinct <= SMALL.templates * SMALL.variants
        assert telemetry.fresh_checks <= telemetry.canonical_distinct
        assert sum(small_run.key_counts.values()) == COUNT
        assert len(small_run.verdicts) == telemetry.canonical_distinct
        assert 0.0 <= telemetry.hit_rate <= 1.0
        # Violating + failed + clean partitions the fleet.
        clean = (
            telemetry.households
            - telemetry.violating_households
            - telemetry.failed_households
        )
        assert clean >= 0

    def test_rename_variants_collapse(self, small_run):
        # Every variant of a template is isomorphic by construction, so
        # the canonical tier is at most one entry per *template*.
        assert small_run.telemetry.canonical_distinct <= SMALL.templates

    def test_property_counters_cover_violating_households(self, small_run):
        telemetry = small_run.telemetry
        if telemetry.violating_households:
            assert telemetry.by_property
            assert max(telemetry.by_property.values()) <= (
                telemetry.violating_households
            )
            assert sum(telemetry.by_combo.values()) == (
                telemetry.violating_households
            )

    def test_blocklist_covers_violating_forms(self, small_run):
        entries = small_run.blocklist["entries"]
        assert len(entries) == small_run.telemetry.violating_distinct
        assert sum(e["households"] for e in entries) == (
            small_run.telemetry.violating_households
        )
        for entry in entries:
            assert entry["properties"]
            assert entry["combination"] == sorted(entry["combination"])

    def test_registry_restored_after_run(self, small_run):
        # The loader-scoping regression: a fleet screen registers one
        # synthetic app per pool member, and every registration must be
        # rolled back when the run finishes.
        assert [i for i in registered_ids() if i.startswith("Flt")] == []


class TestDiskTier:
    def test_warm_run_checks_nothing(self, tmp_path):
        options = FleetOptions(jobs=1, cache_dir=str(tmp_path))
        cold = run_fleet(SMALL, COUNT, options)
        assert cold.telemetry.fresh_checks > 0
        assert cold.telemetry.disk_hits == 0
        warm = run_fleet(SMALL, COUNT, options)
        assert warm.telemetry.fresh_checks == 0
        assert warm.telemetry.disk_hits == warm.telemetry.canonical_distinct
        assert warm.telemetry.hit_rate == 1.0
        # Same fleet, same verdicts — the cache changes cost, not truth.
        assert (
            warm.telemetry.violating_households
            == cold.telemetry.violating_households
        )
        assert set(warm.verdicts) == set(cold.verdicts)

    def test_knobs_partition_the_tier(self, tmp_path):
        cache = FleetCache(tmp_path)
        verdict = HouseholdVerdict(canonical_key="k" * 64, members=("A", "B"))
        cache.put("k" * 64, verdict, "auto", "auto", "auto", 512)
        assert cache.get("k" * 64, "auto", "auto", "auto", 512) is not None
        # A forced-knob run never sees the auto entry.
        assert cache.get("k" * 64, "bdd", "auto", "auto", 512) is None
        assert cache.get("k" * 64, "auto", "auto", "auto", 10_000) is None


class TestPooledExecution:
    def test_pooled_matches_serial(self, small_run):
        pooled = run_fleet(SMALL, COUNT, FleetOptions(jobs=2, batch_size=2))
        assert set(pooled.verdicts) == set(small_run.verdicts)
        for key, verdict in pooled.verdicts.items():
            assert verdict.violated_ids() == small_run.verdicts[key].violated_ids()
        assert (
            pooled.telemetry.violating_households
            == small_run.telemetry.violating_households
        )


class TestExitCodes:
    def _result(self, violating: int, failed: int) -> FleetResult:
        telemetry = FleetTelemetry(
            households=10,
            violating_households=violating,
            failed_households=failed,
        )
        return FleetResult(telemetry=telemetry)

    def test_violations_win(self):
        assert self._result(violating=3, failed=2).exit_code == 1

    def test_failures_without_violations(self):
        assert self._result(violating=0, failed=2).exit_code == 3

    def test_clean(self):
        assert self._result(violating=0, failed=0).exit_code == 0

    def test_real_run_reports_violations(self, small_run):
        # The generator's benign fragments still race in unions (S.2 /
        # S.4), so any real profile screens dirty — exit 1.
        assert small_run.exit_code == 1


class TestProfileKnobs:
    def test_default_crossover_is_fleet_tuned(self):
        assert FleetOptions().max_union_states == FLEET_MAX_UNION_STATES

    def test_pool_is_deterministic(self):
        first = TemplatePool(SMALL)
        second = TemplatePool(SMALL)
        for template in range(SMALL.templates):
            assert [m.source for m in first.blueprint(template).members] == [
                m.source for m in second.blueprint(template).members
            ]
            for variant in range(SMALL.variants):
                assert first.canonical_key(template, variant) == (
                    second.canonical_key(template, variant)
                )

    def test_household_sizes_in_bounds(self):
        pool = TemplatePool(SMALL)
        for template in range(SMALL.templates):
            size = len(pool.blueprint(template).members)
            assert SMALL.min_size <= size <= SMALL.max_size
