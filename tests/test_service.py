"""Analysis-as-a-service: jobs, policy, and the HTTP API end to end.

The e2e tests run a real :class:`~repro.service.app` server on an
ephemeral port and drive it with :mod:`urllib` — the same path the CI
smoke test and a real reviewer queue would use: a violating corpus app
comes back ``needs-review`` with decoded witnesses, a clean one
``approved``, and an identical resubmission is served from the job store
without re-running a single pipeline stage.
"""

import concurrent.futures
import http.client
import json
import pickle
import threading
import urllib.error
import urllib.request

import pytest

from repro.corpus.loader import load_source
from repro.pipeline.stages import source_digest
from repro.service.app import (
    MAX_BODY_BYTES,
    SoteriaService,
    _analyze_in_worker,
    build_server,
)
from repro.service.jobs import JobRecord, JobStore, job_id_for, submission_key
from repro.service.policy import APPROVED, NEEDS_REVIEW, decide
from repro.properties.catalog import Violation

GOOD = '''
definition(name: "Good")
preferences { section("s") {
    input "ws", "capability.waterSensor"
    input "vd", "capability.valve"
} }
def installed() { subscribe(ws, "water.wet", h) }
def h(evt) { vd.close() }
'''

BAD = GOOD.replace("close()", "open()").replace('"Good"', '"Bad"')


# ----------------------------------------------------------------------
# HTTP plumbing
# ----------------------------------------------------------------------
@pytest.fixture()
def server(tmp_path):
    # pool="thread": the in-process pool keeps the e2e tests fast and
    # lets them read the parent's stage counters; the process-pool
    # default is exercised by TestProcessPool and the hardening suite.
    srv = build_server(
        host="127.0.0.1", port=0, state_dir=tmp_path / "state", pool="thread"
    )
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.service.shutdown()
    srv.shutdown()
    srv.server_close()
    thread.join(timeout=5)


def _url(server, path):
    host, port = server.server_address[:2]
    return f"http://{host}:{port}{path}"


def _get(server, path):
    try:
        with urllib.request.urlopen(_url(server, path), timeout=60) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _post(server, path, body):
    request = urllib.request.Request(
        _url(server, path),
        data=json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=120) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _stage_misses(stats):
    return sum(s["misses"] for s in stats["pipeline"]["stages"].values())


# ----------------------------------------------------------------------
# Policy
# ----------------------------------------------------------------------
class TestPolicy:
    def test_clean_submission_approved(self):
        decision = decide([])
        assert decision.verdict == APPROVED
        assert not decision.flagged

    def test_any_violation_needs_review_never_rejected(self):
        violation = Violation(
            property_id="P.30", apps=("X",), description="d", formula="f"
        )
        decision = decide([violation])
        assert decision.verdict == NEEDS_REVIEW
        assert decision.flagged
        assert "P.30" in decision.reason

    def test_reflective_findings_noted_as_possible_false_positives(self):
        violation = Violation(
            property_id="P.2", apps=("X",), description="d", formula="f",
            via_reflection=True,
        )
        assert "false positive" in decide([violation]).reason


# ----------------------------------------------------------------------
# Job store
# ----------------------------------------------------------------------
class TestJobStore:
    @staticmethod
    def _record(source="src", name="A", backend="auto"):
        key = submission_key([(name, source)], backend=backend)
        return JobRecord(
            id=job_id_for(key), key=key, kind="app",
            apps=[name], digests=[source], backend=backend,
        )

    def test_idempotent_submit(self):
        store = JobStore()
        first, created = store.submit(self._record())
        assert created
        again, created = store.submit(self._record())
        assert not created
        assert again is first

    def test_knob_change_is_a_different_job(self):
        store = JobStore()
        store.submit(self._record())
        _record, created = store.submit(self._record(backend="symbolic"))
        assert created

    def test_update_rejects_unknown_fields(self):
        store = JobStore()
        record, _ = store.submit(self._record())
        with pytest.raises(AttributeError):
            store.update(record.id, no_such_field=1)

    def test_durable_across_restart_with_crash_recovery(self, tmp_path):
        store = JobStore(tmp_path)
        done, _ = store.submit(self._record(name="Done"))
        store.update(done.id, status="done", verdict=APPROVED)
        crashed, _ = store.submit(self._record(name="Crashed"))
        store.update(crashed.id, status="running")
        # Persisted at submit time, never picked up by a worker: must
        # not reload as an unrunnable 'queued' record.
        stuck, _ = store.submit(self._record(name="Stuck"))

        reborn = JobStore(tmp_path)  # a service restart
        assert reborn.get(done.id).verdict == APPROVED
        assert reborn.get(crashed.id).status == "failed"
        assert "restarted" in reborn.get(crashed.id).error
        assert reborn.get(stuck.id).status == "failed"
        assert "restarted" in reborn.get(stuck.id).error
        # ... and still dedupes against pre-restart submissions.
        _record, created = reborn.submit(self._record(name="Done"))
        assert not created

    def test_listing_is_newest_first_and_paginated(self):
        store = JobStore()
        for index in range(5):
            store.submit(self._record(name=f"A{index}"))
        page = store.list(page=1, per_page=2)
        assert page["total"] == 5
        assert [job["apps"] for job in page["jobs"]] == [["A4"], ["A3"]]
        last = store.list(page=3, per_page=2)
        assert [job["apps"] for job in last["jobs"]] == [["A0"]]


# ----------------------------------------------------------------------
# Service core: failed-job retry + worker pools
# ----------------------------------------------------------------------
def _total_misses(service):
    return sum(c["misses"] for c in service.pipeline.store.counters().values())


class TestServiceCore:
    def test_failed_job_retries_on_identical_resubmission(self, tmp_path):
        service = SoteriaService(state_dir=tmp_path / "state")
        try:
            entries = [("Broken", "this is not groovy {")]
            record, created = service.submit(entries)
            assert created
            record = service.wait(record.id, timeout=120)
            assert record.status == "failed"
            misses_before = _total_misses(service)

            again, created = service.submit(entries)
            assert not created            # same job record ...
            assert again.id == record.id
            final = service.wait(record.id, timeout=120)
            assert final.status == "failed"  # still broken — but it re-ran:
            assert _total_misses(service) > misses_before
        finally:
            service.shutdown()

    def test_done_job_is_never_retried(self, tmp_path):
        service = SoteriaService(state_dir=tmp_path / "state")
        try:
            record, _created = service.submit([("Good", GOOD)])
            assert service.wait(record.id, timeout=120).status == "done"
            misses_before = _total_misses(service)
            again, created = service.submit([("Good", GOOD)])
            assert not created
            final = service.wait(again.id, timeout=120)
            assert final.verdict == APPROVED
            assert _total_misses(service) == misses_before
        finally:
            service.shutdown()

    def test_queued_job_from_a_previous_life_recovers_and_reruns(self, tmp_path):
        state = tmp_path / "state"
        digest = source_digest("Good", GOOD)
        key = submission_key([("Good", digest)])
        # A crashed service persisted this at submit time and died
        # before any worker picked it up.
        JobStore(state).submit(
            JobRecord(
                id=job_id_for(key), key=key, kind="app",
                apps=["Good"], digests=[digest],
            )
        )
        service = SoteriaService(state_dir=state)
        try:
            assert service.jobs.get(job_id_for(key)).status == "failed"
            record, created = service.submit([("Good", GOOD)])
            assert not created    # dedupes against the recovered record
            final = service.wait(record.id, timeout=120)
            assert final.status == "done"
            assert final.verdict == APPROVED
        finally:
            service.shutdown()


class TestProcessPool:
    def test_worker_payload_and_result_are_picklable(self, tmp_path):
        args = (
            [("Bad", BAD)], "app", "auto", "auto", "auto",
            str(tmp_path / "cache"),
        )
        pickle.dumps((_analyze_in_worker, args))  # what the pool ships
        fields = _analyze_in_worker(*args)
        pickle.dumps(fields)                      # what the worker returns
        assert fields["status"] == "done"
        assert fields["verdict"] == NEEDS_REVIEW
        assert fields["violations"]

    def test_environment_jobs_through_the_worker_body(self):
        fields = _analyze_in_worker(
            [("Good", GOOD), ("Bad", BAD)], "environment", "auto", "auto",
            "auto", None,
        )
        assert fields["verdict"] == NEEDS_REVIEW
        assert {v["property_id"] for v in fields["violations"]} >= {"P.30", "P.11"}

    def test_process_pool_service_end_to_end(self, tmp_path):
        # Falls back to threads where multiprocessing is unavailable —
        # either way the verdicts and failure recording must hold.
        service = SoteriaService(
            cache_dir=tmp_path / "cache", state_dir=tmp_path / "state",
            pool="process",
        )
        try:
            assert service.pool_kind in ("process", "thread")
            record, _ = service.submit([("Bad", BAD)])
            final = service.wait(record.id, timeout=300)
            assert final.status == "done", final.error
            assert final.verdict == NEEDS_REVIEW
            assert final.violations  # decoded payloads crossed the boundary

            broken, _ = service.submit([("Broken", "not groovy {")])
            final = service.wait(broken.id, timeout=300)
            assert final.status == "failed"  # recorded by the parent
            assert "ParseError" in final.error  # the real cause, not a
            #                                     pool-infrastructure error

            # A failed job must not poison the pool: the next one runs.
            after, _ = service.submit([("Good", GOOD)])
            final = service.wait(after.id, timeout=300)
            assert final.status == "done", final.error
            assert final.verdict == APPROVED
        finally:
            service.shutdown()

    def test_worker_pool_failure_is_recorded_not_swallowed(self, tmp_path):
        # A pool whose futures fail before the worker body runs (e.g. a
        # pickling error in the executor feeder): the job must come back
        # 'failed', never hang 'queued'/'running' forever.
        class ExplodingPool:
            def submit(self, *_args, **_kwargs):
                future = concurrent.futures.Future()
                future.set_exception(RuntimeError("feeder blew up"))
                return future

            def shutdown(self, **_kwargs):
                pass

        service = SoteriaService(state_dir=tmp_path / "state")
        service._process_pool = ExplodingPool()
        try:
            record, _ = service.submit([("Good", GOOD)])
            final = service.wait(record.id, timeout=60)
            assert final.status == "failed"
            assert "feeder blew up" in final.error
        finally:
            service.shutdown()


# ----------------------------------------------------------------------
# HTTP end to end
# ----------------------------------------------------------------------
class TestServiceHttp:
    def test_health(self, server):
        status, body = _get(server, "/v1/health")
        assert status == 200
        assert body["status"] == "ok"

    def test_violating_app_flagged_with_decoded_witnesses(self, server):
        status, job = _post(
            server,
            "/v1/submissions?wait=120",
            {"source": load_source("App1"), "name": "App1"},
        )
        assert status == 201
        assert job["created"] is True
        assert job["status"] == "done", job.get("error")
        assert job["verdict"] == NEEDS_REVIEW
        assert job["flagged"] is True
        assert job["violations"] >= 1  # summary carries the count

        status, body = _get(server, f"/v1/jobs/{job['id']}/violations")
        assert status == 200
        by_id = {v["property_id"]: v for v in body["violations"]}
        assert "P.2" in by_id
        # The witness trace is decoded into the payload, not a handle.
        assert by_id["P.2"]["counterexample"]

    def test_clean_app_auto_approved(self, server):
        status, job = _post(
            server,
            "/v1/submissions?wait=120",
            {"source": load_source("O1"), "name": "O1"},
        )
        assert status == 201
        assert job["status"] == "done", job.get("error")
        assert job["verdict"] == APPROVED
        assert job["flagged"] is False
        assert job["violations"] == 0

    def test_identical_resubmission_reruns_nothing(self, server):
        body = {"source": load_source("App1"), "name": "App1"}
        status, first = _post(server, "/v1/submissions?wait=120", body)
        assert status == 201
        assert first["status"] == "done"
        _status, stats_before = _get(server, "/v1/stats")

        status, again = _post(server, "/v1/submissions?wait=120", body)
        assert status == 200          # existing job, not a new one
        assert again["created"] is False
        assert again["id"] == first["id"]
        assert again["verdict"] == first["verdict"]

        _status, stats_after = _get(server, "/v1/stats")
        # The whole point: the verdict came from the job store — zero new
        # stage misses, i.e. no pipeline stage re-ran.
        assert _stage_misses(stats_after) == _stage_misses(stats_before)
        assert stats_after["jobs"]["total"] == stats_before["jobs"]["total"]

    def test_environment_submission_and_witness_pagination(self, server):
        status, job = _post(
            server,
            "/v1/submissions?wait=120",
            {"sources": [
                {"name": "Good", "source": GOOD},
                {"name": "Bad", "source": BAD},
            ]},
        )
        assert status == 201
        assert job["kind"] == "environment"
        assert job["status"] == "done", job.get("error")
        assert job["verdict"] == NEEDS_REVIEW
        total = job["violations"]
        assert total >= 2  # P.30 and P.11 at least

        seen = []
        for page in range(1, total + 1):
            _s, body = _get(
                server,
                f"/v1/jobs/{job['id']}/violations?page={page}&per_page=1",
            )
            assert body["total"] == total
            assert len(body["violations"]) == 1
            seen.append(body["violations"][0]["property_id"])
        assert {"P.30", "P.11"} <= set(seen)
        _s, past_end = _get(
            server,
            f"/v1/jobs/{job['id']}/violations?page={total + 1}&per_page=1",
        )
        assert past_end["violations"] == []

    def test_concurrent_submissions_through_the_worker_pool(self, server):
        bodies = [
            {"source": load_source("O1"), "name": "O1"},
            {"source": load_source("TP3"), "name": "TP3"},
            {"source": GOOD, "name": "Good"},
            {"source": BAD, "name": "Bad"},
        ]
        with concurrent.futures.ThreadPoolExecutor(max_workers=4) as pool:
            results = list(
                pool.map(
                    lambda body: _post(server, "/v1/submissions?wait=120", body),
                    bodies,
                )
            )
        verdicts = {job["apps"][0]: job["verdict"] for _s, job in results}
        assert all(job["status"] == "done" for _s, job in results)
        assert verdicts["O1"] == APPROVED
        assert verdicts["Good"] == APPROVED
        assert verdicts["TP3"] == NEEDS_REVIEW  # S.4 (Appendix C)
        assert verdicts["Bad"] == NEEDS_REVIEW

        _s, listing = _get(server, "/v1/jobs?per_page=10")
        assert listing["total"] == 4

    def test_job_listing_and_lookup(self, server):
        _post(server, "/v1/submissions?wait=120", {"source": GOOD, "name": "G"})
        _s, listing = _get(server, "/v1/jobs")
        assert listing["total"] == 1
        job_id = listing["jobs"][0]["id"]
        status, job = _get(server, f"/v1/jobs/{job_id}")
        assert status == 200
        assert job["id"] == job_id

    def test_error_paths(self, server):
        status, body = _get(server, "/v1/jobs/job-nope")
        assert status == 404
        status, body = _post(server, "/v1/submissions", {"nonsense": 1})
        assert status == 400
        assert "source" in body["error"]
        status, body = _post(
            server, "/v1/submissions", {"source": GOOD, "backend": "quantum"}
        )
        assert status == 400
        status, body = _post(server, "/v1/submissions", {"sources": []})
        assert status == 400
        status, _body = _get(server, "/v1/unknown")
        assert status == 404

    def test_oversized_submission_rejected_without_reading(self, server):
        host, port = server.server_address[:2]
        conn = http.client.HTTPConnection(host, port, timeout=30)
        try:
            conn.putrequest("POST", "/v1/submissions")
            conn.putheader("Content-Type", "application/json")
            conn.putheader("Content-Length", str(MAX_BODY_BYTES + 1))
            conn.endheaders()
            # No body sent: the server must answer from the header alone
            # instead of buffering an attacker-sized payload.
            response = conn.getresponse()
            assert response.status == 413
            assert b"exceeds" in response.read()
        finally:
            conn.close()
        assert _get(server, "/v1/health")[0] == 200

    def test_malformed_content_length_is_a_400(self, server):
        host, port = server.server_address[:2]
        for bogus in ("nope", "-5"):
            conn = http.client.HTTPConnection(host, port, timeout=30)
            try:
                conn.putrequest("POST", "/v1/submissions")
                conn.putheader("Content-Type", "application/json")
                conn.putheader("Content-Length", bogus)
                conn.endheaders()
                response = conn.getresponse()
                assert response.status == 400, bogus
                assert b"Content-Length" in response.read()
            finally:
                conn.close()
        assert _get(server, "/v1/health")[0] == 200

    def test_unparseable_source_fails_the_job_not_the_server(self, server):
        status, job = _post(
            server,
            "/v1/submissions?wait=120",
            {"source": "this is not groovy {", "name": "Broken"},
        )
        assert status == 201
        assert job["status"] == "failed"
        assert job["error"]
        # The server is still healthy afterwards.
        assert _get(server, "/v1/health")[0] == 200

    def test_stats_shape(self, server):
        _post(server, "/v1/submissions?wait=120", {"source": GOOD, "name": "G"})
        _s, stats = _get(server, "/v1/stats")
        assert stats["jobs"]["done"] == 1
        assert "stages" in stats["pipeline"]
        assert _stage_misses(stats) > 0  # the cold run actually ran stages


# ----------------------------------------------------------------------
# Fleet screening views
# ----------------------------------------------------------------------
class TestFleetViews:
    def test_views_404_before_any_screen(self, server):
        assert _get(server, "/v1/fleet")[0] == 404
        assert _get(server, "/v1/blocklist")[0] == 404

    def test_post_validates_body(self, server):
        assert _post(server, "/v1/fleet", {"households": "many"})[0] == 400
        assert _post(server, "/v1/fleet", {"households": 10**9})[0] == 400
        assert _post(server, "/v1/fleet", {"corpus_weight": 1.5})[0] == 400
        assert _post(server, "/v1/fleet", {"backend": "quantum"})[0] == 400
        # Bad requests publish nothing.
        assert _get(server, "/v1/fleet")[0] == 404

    def test_screen_publishes_telemetry_and_blocklist(self, server):
        status, payload = _post(
            server,
            "/v1/fleet",
            {"households": 300, "templates": 3, "variants": 2, "seed": 5},
        )
        assert status == 200
        assert payload["telemetry"]["households"] == 300
        assert payload["exit_code"] in (0, 1, 3)

        status, fleet = _get(server, "/v1/fleet")
        assert status == 200
        assert fleet["telemetry"]["households"] == 300
        assert 0.0 <= fleet["telemetry"]["hit_rate"] <= 1.0

        status, blocklist = _get(server, "/v1/blocklist")
        assert status == 200
        assert blocklist["schema"] == 1
        assert blocklist["generator"] == "soteria fleet"
        assert blocklist["households_screened"] == 300
        # The service is still healthy and job routes unaffected.
        assert _get(server, "/v1/health")[0] == 200
