"""Runtime simulation and dynamic enforcement (IoTGuard-style extension)."""

import pytest

from repro import analyze_app
from repro.mc.ctl import parse_ctl
from repro.platform.events import Event, EventKind
from repro.runtime import RuntimeMonitor, Simulator
from repro.runtime.monitor import invariant_operand

WATER = '''
definition(name: "Water-Leak-Detector")
preferences { section("s") {
    input "water_sensor", "capability.waterSensor"
    input "valve_device", "capability.valve"
} }
def installed() { subscribe(water_sensor, "water.wet", h) }
def h(evt) { valve_device.close() }
'''

BAD_LIGHT = '''
definition(name: "BadNightLight")
preferences { section("s") {
    input "the_motion", "capability.motionSensor"
    input "hall_light", "capability.switch"
} }
def installed() { subscribe(the_motion, "motion.active", h) }
def h(evt) { hall_light.off() }
'''


def wet():
    return Event(EventKind.DEVICE, "water_sensor", "water", "wet")


def dry():
    return Event(EventKind.DEVICE, "water_sensor", "water", "dry")


def motion():
    return Event(EventKind.DEVICE, "the_motion", "motion", "active")


@pytest.fixture(scope="module")
def water_analysis():
    return analyze_app(WATER)


class TestSimulator:
    def test_initial_state_defaults_to_rest(self, water_analysis):
        sim = Simulator(water_analysis.model)
        assert sim.state == ("dry", "open")

    def test_explicit_initial_state_validated(self, water_analysis):
        with pytest.raises(ValueError):
            Simulator(water_analysis.model, initial=("soggy", "open"))

    def test_wet_event_closes_valve(self, water_analysis):
        sim = Simulator(water_analysis.model)
        step = sim.fire(wet())
        assert step.changed
        assert sim.state == ("wet", "closed")
        assert step.transitions

    def test_unmatched_event_is_noop(self, water_analysis):
        sim = Simulator(water_analysis.model)
        step = sim.fire(dry())
        assert not step.changed
        assert not step.transitions

    def test_trace_replay(self, water_analysis):
        sim = Simulator(water_analysis.model)
        result = sim.run([wet(), wet()])
        assert result.initial == ("dry", "open")
        assert result.final == ("wet", "closed")
        assert len(result.visited()) == 3

    def test_reset(self, water_analysis):
        sim = Simulator(water_analysis.model)
        sim.fire(wet())
        sim.reset()
        assert sim.state == ("dry", "open")

    def test_guard_oracle_consulted(self):
        analysis = analyze_app('''
definition(name: "Guarded")
preferences { section("s") {
    input "the_battery", "capability.battery"
    input "sw", "capability.switch"
    input "lvl", "number"
} }
def installed() { subscribe(the_battery, "battery", h) }
def h(evt) {
    if (the_battery.currentValue("battery") < lvl) { sw.on() }
}
''')
        model = analysis.model
        low = Event(EventKind.DEVICE, "the_battery", "battery", "battery<lvl")
        yes = Simulator(model, oracle=lambda atom: True)
        yes.fire(low)
        assert model.value_in(yes.state, "sw", "switch") == "on"


class TestInvariantSlicing:
    def test_ag_propositional_enforceable(self):
        formula = parse_ctl("AG !(p & q)")
        assert invariant_operand(formula) is not None

    def test_temporal_body_not_enforceable(self):
        formula = parse_ctl("AG (p -> EF q)")
        assert invariant_operand(formula) is None

    def test_non_ag_not_enforceable(self):
        assert invariant_operand(parse_ctl("EF p")) is None


class TestRuntimeMonitor:
    def test_bad_action_blocked(self):
        analysis = analyze_app(BAD_LIGHT)
        assert "P.2" in analysis.violated_ids()  # statically flagged
        monitor = RuntimeMonitor.from_analysis(analysis)
        decision = monitor.feed(motion())
        assert decision.intervened
        blocked_properties = {pid for _t, pid in decision.blocked}
        assert "P.2" in blocked_properties
        # the light was NOT turned off...
        assert analysis.model.value_in(decision.state, "hall_light", "switch") == "on"
        # ...but the sensor reading itself still advanced.
        assert analysis.model.value_in(decision.state, "the_motion", "motion") == "active"

    def test_safe_app_never_intervenes(self, water_analysis):
        monitor = RuntimeMonitor.from_analysis(water_analysis)
        decisions = monitor.run([wet(), dry(), wet()])
        assert not any(d.intervened for d in decisions)
        assert not monitor.interventions()

    def test_custom_policy(self, water_analysis):
        # Forbid the valve from ever being closed (a silly policy, to show
        # custom enforcement): the wet-handler is then blocked.
        policy = parse_ctl('AG !attr:valve_device.valve=closed')
        monitor = RuntimeMonitor(water_analysis.model, [("CUSTOM", policy)])
        decision = monitor.feed(wet())
        assert decision.intervened
        assert decision.blocked[0][1] == "CUSTOM"

    def test_unenforceable_policies_reported(self, water_analysis):
        policy = parse_ctl("AG (attr:water_sensor.water=wet -> EF attr:valve_device.valve=open)")
        monitor = RuntimeMonitor(water_analysis.model, [("LIVENESS", policy)])
        assert monitor.skipped == ["LIVENESS"]

    def test_log_accumulates(self, water_analysis):
        monitor = RuntimeMonitor.from_analysis(water_analysis)
        monitor.run([wet(), dry()])
        assert len(monitor.log) == 2
