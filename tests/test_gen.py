"""Scenario generator: determinism, validity, oracles, cluster wiring."""

import pytest

from repro import analyze_app, analyze_environment
from repro.corpus.sweep import groups_sharing_devices
from repro.gen import (
    BENIGN_PATTERNS,
    VIOLATION_TEMPLATES,
    GenConfig,
    generate_app,
    generate_cluster,
)
from repro.gen.shrink import shrink_app, shrink_cluster
from repro.lang import parse
from repro.lang.pretty import to_source
from repro.model.union import estimate_union_states

#: A modest seed matrix: wide enough to hit every fragment, cheap enough
#: for tier-1.
SEEDS = [(seed, index) for seed in range(3) for index in range(4)]


class TestDeterminism:
    @pytest.mark.parametrize("seed,index", SEEDS)
    def test_same_seed_same_bytes(self, seed, index):
        first = generate_app(seed, index)
        second = generate_app(seed, index)
        assert first.source == second.source
        assert first.injected == second.injected
        assert first.fragments == second.fragments

    def test_different_seeds_differ(self):
        sources = {generate_app(seed, 0).source for seed in range(8)}
        assert len(sources) > 1

    def test_different_indices_differ(self):
        sources = {generate_app(0, index).source for index in range(8)}
        assert len(sources) > 1

    def test_config_changes_the_stream(self):
        default = generate_app(0, 0)
        tweaked = generate_app(0, 0, config=GenConfig(max_fragments=1))
        assert default.source != tweaked.source

    def test_cluster_deterministic(self):
        first = generate_cluster(5, 2)
        second = generate_cluster(5, 2)
        assert [a.source for a in first] == [a.source for a in second]


class TestValidity:
    @pytest.mark.parametrize("seed,index", SEEDS)
    def test_generated_source_parses(self, seed, index):
        app = generate_app(seed, index)
        module = parse(app.source)
        assert module.methods.keys() >= {"installed", "updated", "initialize"}

    @pytest.mark.parametrize("seed,index", SEEDS)
    def test_pretty_fixed_point(self, seed, index):
        # The generator renders through the pretty-printer; its output
        # must be the printer's own canonical form.
        source = generate_app(seed, index).source
        assert to_source(parse(source)) == source

    @pytest.mark.parametrize("seed,index", SEEDS[:6])
    def test_generated_app_analyzes(self, seed, index):
        app = generate_app(seed, index)
        analysis = analyze_app(app.source, name=app.app_id)
        assert analysis.model.size() >= 1
        assert analysis.checked_properties or analysis.violations is not None

    def test_devices_recorded(self):
        app = generate_app(0, 0)
        analysis = analyze_app(app.source, name=app.app_id)
        modeled = {perm.handle for perm in analysis.ir.devices()}
        assert modeled == set(app.devices)


class TestMetamorphicOracle:
    @pytest.mark.parametrize(
        "template", [t.key for t in VIOLATION_TEMPLATES]
    )
    def test_every_template_is_detected(self, template, monkeypatch):
        # Inject each template in isolation (no benign noise): the
        # matching property must be flagged.
        import repro.gen.generator as generator_mod

        target = next(t for t in VIOLATION_TEMPLATES if t.key == template)
        monkeypatch.setattr(
            generator_mod, "VIOLATION_TEMPLATES", (target,)
        )
        app = generate_app(0, 0, inject=True)
        assert app.injected == (target.property_id,)
        analysis = analyze_app(app.source, name=app.app_id)
        assert target.property_id in analysis.violated_ids()

    def test_injection_detected_with_benign_noise(self):
        # The acceptance bar: >= 95% of violation-injected apps flagged
        # by the matching property.  The templates are curated to make
        # this deterministic, so demand 100% on this matrix.
        injected = detected = 0
        for seed in range(2):
            for index in range(6):
                app = generate_app(seed, index, inject=True)
                if not app.injected:
                    continue
                injected += 1
                analysis = analyze_app(app.source, name=app.app_id)
                detected += app.injected[0] in analysis.violated_ids()
        assert injected >= 8
        assert detected == injected

    def test_benign_roll_respects_inject_flag(self):
        app = generate_app(0, 3, inject=False)
        assert app.injected == ()
        assert app.protected_methods == ()


class TestClusters:
    def test_members_share_a_handle(self):
        for index in range(4):
            apps = generate_cluster(1, index)
            assert len(apps) >= 2
            shared = set(apps[0].devices)
            for other in apps[1:]:
                shared &= set(other.devices)
            assert shared, [a.devices for a in apps]

    def test_shared_carrier_never_eats_injected_slots(self):
        # Regression: the shared-channel carrier used to re-bind a slot
        # of the *injected* template to the neutral shared handle when
        # that template held the shared capability — erasing the
        # role-loaded handle name (portable_heater, desk_lamp) the
        # matching property reads, so the injected violation went
        # undetected (fuzz seed 0, cases 26 and 45: P.24 and P.12
        # missed).  Those exact cases must now detect.
        from repro.corpus.fuzz import FuzzConfig, _check_case

        for index in (26, 45):
            result = _check_case(index, FuzzConfig(seed=0, count=100))
            assert result.status == "ok", (index, result.detail)
            assert result.injected
            assert set(result.injected) <= set(result.detected)

    def test_cluster_recovered_by_sweep_enumeration(self):
        # Registered synthetic apps join the sweep engine's channel
        # enumeration like corpus apps: the generated cluster comes back
        # as a single candidate co-installation.
        from repro.corpus.loader import register_app

        apps = generate_cluster(2, 0, id_prefix="GenSweepT")
        for app in apps:
            register_app(app.app_id, app.source)
        ids = [app.app_id for app in apps]
        assert groups_sharing_devices(ids) == [tuple(ids)]

    def test_cluster_estimates_stay_bounded(self):
        # The generator's weight budget must keep every cluster cheap for
        # the explicit backend (the fuzz driver checks both backends).
        for seed in range(3):
            for index in range(3):
                apps = generate_cluster(seed, index)
                analyses = [
                    analyze_app(a.source, name=a.app_id) for a in apps
                ]
                estimate = estimate_union_states([a.model for a in analyses])
                assert estimate <= 25_000

    def test_cluster_backends_agree(self):
        apps = generate_cluster(0, 1)
        analyses = [analyze_app(a.source, name=a.app_id) for a in apps]
        explicit = analyze_environment(list(analyses), backend="explicit")
        symbolic = analyze_environment(list(analyses), backend="symbolic")
        key = lambda v: (v.property_id, v.devices)  # noqa: E731
        assert sorted(map(key, explicit.violations)) == sorted(
            map(key, symbolic.violations)
        )


class TestFragmentCatalogs:
    def test_unique_keys(self):
        keys = [f.key for f in BENIGN_PATTERNS + VIOLATION_TEMPLATES]
        assert len(keys) == len(set(keys))

    def test_templates_name_catalog_properties(self):
        from repro.properties.appspecific import APP_SPECIFIC_PROPERTIES

        known = {spec.id for spec in APP_SPECIFIC_PROPERTIES} | {
            "S.1", "S.2", "S.3", "S.4", "S.5", "DET",
        }
        for template in VIOLATION_TEMPLATES:
            assert template.property_id in known

    def test_benign_patterns_carry_no_property(self):
        assert all(f.property_id is None for f in BENIGN_PATTERNS)


class TestShrink:
    def _still_violates(self, property_id):
        def predicate(source):
            try:
                return property_id in analyze_app(source).violated_ids()
            except Exception:
                return False

        return predicate

    def test_shrink_app_keeps_predicate_true_and_protected_methods(self):
        app = generate_app(0, 1, inject=True)
        predicate = self._still_violates(app.injected[0])
        shrunk = shrink_app(
            app.source, predicate, protected=app.protected_methods
        )
        assert predicate(shrunk)
        module = parse(shrunk)
        for method in app.protected_methods:
            assert method in module.methods
        # Benign fragments must be gone: the shrunk app is smaller.
        assert len(shrunk) <= len(app.source)

    def test_shrink_app_is_deterministic(self):
        app = generate_app(0, 1, inject=True)
        predicate = self._still_violates(app.injected[0])
        assert shrink_app(app.source, predicate) == shrink_app(
            app.source, predicate
        )

    def test_shrink_app_rejects_non_reproducing_input(self):
        app = generate_app(0, 2, inject=False)
        assert (
            shrink_app(app.source, lambda _s: False) == app.source
        )

    def test_shrink_cluster_drops_irrelevant_members(self):
        violating = generate_app(0, 1, inject=True)
        benign = generate_app(0, 3, inject=False)
        pid = violating.injected[0]

        def predicate(sources):
            try:
                return any(
                    pid in analyze_app(s).violated_ids() for s in sources
                )
            except Exception:
                return False

        shrunk = shrink_cluster(
            [benign.source, violating.source],
            predicate,
            protected=[(), violating.protected_methods],
        )
        assert len(shrunk) == 1
        assert predicate(shrunk)
