"""The custom path-condition checker — unit + property-based tests."""

from hypothesis import given, strategies as st

from repro.analysis.feasibility import is_feasible
from repro.analysis.predicates import Atom, negate_atom
from repro.analysis.values import Const, DeviceRead, EventValue, UserInput

POWER = DeviceRead("meter", "power")
EVT = EventValue()


def atom(lhs, op, rhs):
    return Atom(lhs=lhs, op=op, rhs=rhs)


class TestNumericIntervals:
    def test_empty_condition_feasible(self):
        assert is_feasible(())

    def test_single_atom_feasible(self):
        assert is_feasible((atom(POWER, ">", Const(50)),))

    def test_contradictory_bounds(self):
        assert not is_feasible(
            (atom(POWER, ">", Const(50)), atom(POWER, "<", Const(5)))
        )

    def test_compatible_bounds(self):
        assert is_feasible(
            (atom(POWER, ">", Const(5)), atom(POWER, "<", Const(50)))
        )

    def test_paper_example_x_gt1_and_x_lt0(self):
        x = UserInput("x")
        assert not is_feasible((atom(x, ">", Const(1)), atom(x, "<", Const(0))))

    def test_boundary_strictness(self):
        assert not is_feasible(
            (atom(POWER, ">", Const(10)), atom(POWER, "<=", Const(10)))
        )
        assert is_feasible(
            (atom(POWER, ">=", Const(10)), atom(POWER, "<=", Const(10)))
        )

    def test_equality_within_range(self):
        assert is_feasible(
            (atom(POWER, "==", Const(20)), atom(POWER, "<", Const(50)))
        )

    def test_equality_outside_range(self):
        assert not is_feasible(
            (atom(POWER, "==", Const(100)), atom(POWER, "<", Const(50)))
        )

    def test_two_different_equalities(self):
        assert not is_feasible(
            (atom(POWER, "==", Const(1)), atom(POWER, "==", Const(2)))
        )

    def test_equality_vs_exclusion(self):
        assert not is_feasible(
            (atom(POWER, "==", Const(5)), atom(POWER, "!=", Const(5)))
        )


class TestStringsAndEvents:
    def test_event_value_two_strings(self):
        assert not is_feasible(
            (atom(EVT, "==", Const("detected")), atom(EVT, "==", Const("clear")))
        )

    def test_event_value_eq_and_neq(self):
        assert is_feasible(
            (atom(EVT, "==", Const("detected")), atom(EVT, "!=", Const("clear")))
        )

    def test_truthy_falsy_conflict(self):
        a = Atom(lhs=UserInput("flag"), op="truthy")
        b = Atom(lhs=UserInput("flag"), op="falsy")
        assert not is_feasible((a, b))
        assert is_feasible((a,))

    def test_distinct_expressions_independent(self):
        other = DeviceRead("meter2", "power")
        assert is_feasible(
            (atom(POWER, ">", Const(50)), atom(other, "<", Const(5)))
        )


class TestSymbolicPairs:
    def test_symbolic_eq_then_neq(self):
        t = UserInput("thrshld")
        assert not is_feasible((atom(POWER, "==", t), atom(POWER, "!=", t)))

    def test_symbolic_lt_then_ge(self):
        t = UserInput("thrshld")
        assert not is_feasible((atom(POWER, "<", t), atom(POWER, ">=", t)))

    def test_swapped_orientation_detected(self):
        t = UserInput("thrshld")
        # power < t together with t < power is a contradiction.
        assert not is_feasible((atom(POWER, "<", t), atom(t, "<", POWER)))

    def test_reflexive_lt_infeasible(self):
        assert not is_feasible((atom(POWER, "<", POWER),))

    def test_reflexive_eq_feasible(self):
        assert is_feasible((atom(POWER, "==", POWER),))

    def test_unrelated_symbolic_conservative(self):
        a = UserInput("a")
        b = UserInput("b")
        assert is_feasible((atom(POWER, "<", a), atom(POWER, ">", b)))


# ----------------------------------------------------------------------
# Property-based: the checker must agree with a brute-force evaluation
# over a small concrete domain.
# ----------------------------------------------------------------------
_OPS = ["==", "!=", "<", "<=", ">", ">="]


@st.composite
def numeric_conditions(draw):
    n = draw(st.integers(min_value=1, max_value=4))
    atoms = []
    for _ in range(n):
        op = draw(st.sampled_from(_OPS))
        const = draw(st.integers(min_value=0, max_value=6))
        atoms.append(atom(POWER, op, Const(const)))
    return tuple(atoms)


def _brute_force_feasible(condition) -> bool:
    candidates = [x / 2.0 for x in range(-2, 16)]
    for value in candidates:
        ok = True
        for a in condition:
            c = float(a.rhs.value)
            ok &= {
                "==": value == c,
                "!=": value != c,
                "<": value < c,
                "<=": value <= c,
                ">": value > c,
                ">=": value >= c,
            }[a.op]
        if ok:
            return True
    return False


@given(numeric_conditions())
def test_checker_agrees_with_brute_force(condition):
    # The checker must be *sound*: never call a satisfiable condition
    # infeasible.  On this constant-only fragment it is also exact.
    assert is_feasible(condition) == _brute_force_feasible(condition)


@given(numeric_conditions())
def test_atom_with_its_negation_is_infeasible(condition):
    first = condition[0]
    assert not is_feasible((first, negate_atom(first)))


@given(numeric_conditions())
def test_subset_monotonicity(condition):
    # Dropping atoms can only make a condition easier to satisfy.
    if is_feasible(condition):
        assert is_feasible(condition[:-1])
