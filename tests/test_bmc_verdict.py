"""BMC verdict soundness + incremental unrolling.

The regression of record: the original ``BoundedChecker.check_invariant``
returned *holds* whenever no counterexample existed within the bound —
so a violation three steps deep "held" under ``bound=2``.  The tri-state
contract makes bound exhaustion :data:`Verdict.UNKNOWN`; a proof
(:data:`Verdict.HOLDS`) is claimed only when the explored depth reaches
the completeness bound ``|S| - 1``, past which every state has been
visited by some simple path.

The incremental side: one growing solver serves every depth and every
formula.  Raising the depth appends exactly one transition step's worth
of clauses (linear growth, no re-encoding), and re-querying already
explored depths appends no transition steps at all — depth selection
happens through assumptions.
"""

import pytest

from repro.mc.bmc import BoundedChecker, Verdict
from repro.model.kripke import KripkeState, KripkeStructure


def chain_kripke(length, bad_at=None, orphan_bad=False):
    """0 -> 1 -> ... -> length-1 (self-loop at the end); "bad" holds at
    index ``bad_at``, "p" everywhere else.  With ``orphan_bad`` an extra
    unreachable self-looping "bad" state is appended, making ``AG !bad``
    hold — but only provably so at the completeness bound.
    """
    nodes = [KripkeState(state=(str(i),), incoming=()) for i in range(length)]
    kripke = KripkeStructure()
    kripke.states = list(nodes)
    kripke.initial = [nodes[0]]
    for i, node in enumerate(nodes):
        kripke.succ[node] = [nodes[min(i + 1, length - 1)]]
        kripke.labels[node] = frozenset({"bad"} if i == bad_at else {"p"})
    if orphan_bad:
        orphan = KripkeState(state=("orphan",), incoming=())
        kripke.states.append(orphan)
        kripke.succ[orphan] = [orphan]
        kripke.labels[orphan] = frozenset({"bad"})
    return kripke


class TestVerdictSoundness:
    def test_depth3_violation_is_not_holds_under_bound2(self):
        """THE regression: under the old bool contract this returned
        "holds" — a violation just past the bound was reported as a
        proof.  Bound exhaustion must be UNKNOWN."""
        kripke = chain_kripke(5, bad_at=3)
        checker = BoundedChecker(kripke)
        verdict, trace = checker.check_invariant("AG !bad", bound=2)
        assert verdict is Verdict.UNKNOWN
        assert not verdict          # UNKNOWN is falsy: no proof claimed
        assert trace == []

    def test_same_formula_violated_at_sufficient_bound(self):
        kripke = chain_kripke(5, bad_at=3)
        checker = BoundedChecker(kripke)
        verdict, trace = checker.check_invariant("AG !bad", bound=3)
        assert verdict is Verdict.VIOLATED
        assert bool(verdict) is False
        assert len(trace) == 4      # states 0..3
        assert "bad" in kripke.labels[trace[-1]]

    def test_holds_claimed_exactly_at_completeness_bound(self):
        # Chain of 5 plus an unreachable bad orphan: 6 states, so the
        # completeness bound is 5.  One step short is UNKNOWN; reaching
        # the bound turns exhaustion into a proof.
        kripke = chain_kripke(5, orphan_bad=True)
        checker = BoundedChecker(kripke)
        verdict, _ = checker.check_invariant("AG !bad", bound=4)
        assert verdict is Verdict.UNKNOWN
        verdict, _ = checker.check_invariant("AG !bad", bound=5)
        assert verdict is Verdict.HOLDS
        assert verdict              # HOLDS is the only truthy verdict

    def test_default_bound_is_complete(self):
        kripke = chain_kripke(4, orphan_bad=True)
        verdict, _ = BoundedChecker(kripke).check_invariant("AG !bad")
        assert verdict is Verdict.HOLDS

    def test_empty_bad_set_holds_at_any_bound(self):
        kripke = chain_kripke(4)
        verdict, _ = BoundedChecker(kripke).check_invariant("AG p", bound=0)
        assert verdict is Verdict.HOLDS

    def test_violation_at_initial_state(self):
        kripke = chain_kripke(3, bad_at=0)
        verdict, trace = BoundedChecker(kripke).check_invariant(
            "AG !bad", bound=0
        )
        assert verdict is Verdict.VIOLATED
        assert len(trace) == 1

    def test_non_ag_formula_rejected(self):
        kripke = chain_kripke(3)
        with pytest.raises(ValueError):
            BoundedChecker(kripke).check_invariant("EF bad")


class TestIncrementalUnrolling:
    def test_clause_counts_grow_linearly_with_depth(self):
        kripke = chain_kripke(8, orphan_bad=True)
        checker = BoundedChecker(kripke)
        counts = []
        for depth in range(1, 6):
            checker._ensure_depth(depth)
            counts.append(checker.clause_count)
        deltas = [b - a for a, b in zip(counts, counts[1:])]
        assert all(d > 0 for d in deltas)
        # One transition step's worth of clauses per extra depth — the
        # same delta every time, i.e. linear growth, no re-encoding.
        assert len(set(deltas)) == 1

    def test_re_querying_adds_no_transition_steps(self):
        kripke = chain_kripke(6, bad_at=5)
        checker = BoundedChecker(kripke)
        checker.check_invariant("AG !bad", bound=4)   # UNKNOWN: bad at 5
        solver = checker.solver
        steps = len(checker._steps)
        before = checker.clause_count
        checker.check_invariant("AG !bad", bound=4)
        checker.check_invariant("AG !bad", bound=2)
        # Same solver object and no new unrolling: the transition
        # relation was reused via assumptions; only per-query bad-state
        # activation clauses were appended.
        assert checker.solver is solver
        assert len(checker._steps) == steps
        per_query = checker.nbits + 1  # one-bad-state activation overhead
        assert checker.clause_count - before <= 8 * per_query

    def test_unrolling_is_shared_across_formulas(self):
        kripke = chain_kripke(6, bad_at=4)
        checker = BoundedChecker(kripke)
        verdict, trace = checker.check_invariant("AG !bad", bound=4)
        assert verdict is Verdict.VIOLATED
        assert len(trace) == 5
        steps = len(checker._steps)
        # A second formula rides the existing unrolling.
        verdict, trace = checker.check_invariant("AG !p", bound=4)
        assert verdict is Verdict.VIOLATED   # p holds in the initial state
        assert len(checker._steps) == steps
