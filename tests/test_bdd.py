"""ROBDD package: canonicity, boolean algebra, quantification, counting."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.mc.bdd import BDD


@pytest.fixture
def bdd():
    manager = BDD()
    for name in ("a", "b", "c", "d"):
        manager.add_var(name)
    return manager


class TestBasics:
    def test_terminals(self, bdd):
        assert bdd.TRUE == 1 and bdd.FALSE == 0

    def test_variable_evaluation(self, bdd):
        a = bdd.var("a")
        assert bdd.evaluate(a, {"a": True})
        assert not bdd.evaluate(a, {"a": False})

    def test_negated_variable(self, bdd):
        na = bdd.nvar("a")
        assert bdd.evaluate(na, {"a": False})

    def test_canonicity_same_function_same_node(self, bdd):
        a, b = bdd.var("a"), bdd.var("b")
        f1 = bdd.or_(a, b)
        f2 = bdd.not_(bdd.and_(bdd.not_(a), bdd.not_(b)))  # De Morgan
        assert f1 == f2

    def test_double_negation(self, bdd):
        a = bdd.var("a")
        assert bdd.not_(bdd.not_(a)) == a

    def test_tautology_collapses_to_true(self, bdd):
        a = bdd.var("a")
        assert bdd.or_(a, bdd.not_(a)) == bdd.TRUE

    def test_contradiction_collapses_to_false(self, bdd):
        a = bdd.var("a")
        assert bdd.and_(a, bdd.not_(a)) == bdd.FALSE

    def test_xor_and_iff_duals(self, bdd):
        a, b = bdd.var("a"), bdd.var("b")
        assert bdd.xor(a, b) == bdd.not_(bdd.iff(a, b))

    def test_implies(self, bdd):
        a, b = bdd.var("a"), bdd.var("b")
        f = bdd.implies(a, b)
        assert bdd.evaluate(f, {"a": False, "b": False})
        assert not bdd.evaluate(f, {"a": True, "b": False})


class TestQuantification:
    def test_exists_removes_variable(self, bdd):
        a, b = bdd.var("a"), bdd.var("b")
        f = bdd.and_(a, b)
        g = bdd.exists(["a"], f)
        assert g == b

    def test_exists_of_tautology_in_var(self, bdd):
        a = bdd.var("a")
        assert bdd.exists(["a"], a) == bdd.TRUE

    def test_forall(self, bdd):
        a, b = bdd.var("a"), bdd.var("b")
        f = bdd.or_(a, b)
        assert bdd.forall(["a"], f) == b

    def test_rename(self, bdd):
        a, c = bdd.var("a"), bdd.var("c")
        f = bdd.rename(a, {"a": "c"})
        assert f == c

    def test_rename_swap_order_safe(self, bdd):
        # Rename d -> a moves a node *up* the order; composition handles it.
        d, b = bdd.var("d"), bdd.var("b")
        f = bdd.and_(d, b)
        g = bdd.rename(f, {"d": "a"})
        assert bdd.evaluate(g, {"a": True, "b": True})
        assert not bdd.evaluate(g, {"a": False, "b": True})

    def test_restrict(self, bdd):
        a, b = bdd.var("a"), bdd.var("b")
        f = bdd.and_(a, b)
        assert bdd.restrict(f, {"a": True}) == b
        assert bdd.restrict(f, {"a": False}) == bdd.FALSE


class TestCountingAndSat:
    def test_count_single_variable(self, bdd):
        assert bdd.count_sat(bdd.var("a")) == 8  # 1 fixed, 3 free

    def test_count_conjunction(self, bdd):
        f = bdd.and_(bdd.var("a"), bdd.var("b"))
        assert bdd.count_sat(f) == 4

    def test_count_true_false(self, bdd):
        assert bdd.count_sat(bdd.TRUE) == 16
        assert bdd.count_sat(bdd.FALSE) == 0

    def test_any_sat(self, bdd):
        f = bdd.and_(bdd.var("a"), bdd.nvar("c"))
        assignment = bdd.any_sat(f)
        full = {"a": False, "b": False, "c": False, "d": False, **assignment}
        assert bdd.evaluate(f, full)

    def test_any_sat_of_false(self, bdd):
        assert bdd.any_sat(bdd.FALSE) is None

    def test_size(self, bdd):
        a = bdd.var("a")
        assert bdd.size(a) == 3  # node + two terminals


# ----------------------------------------------------------------------
# Property-based: BDD operations agree with truth tables.
# ----------------------------------------------------------------------
_VARS = ["a", "b", "c"]


@st.composite
def boolean_exprs(draw, depth=0):
    if depth > 3 or draw(st.booleans()):
        return ("var", draw(st.sampled_from(_VARS)))
    op = draw(st.sampled_from(["and", "or", "not", "xor"]))
    if op == "not":
        return ("not", draw(boolean_exprs(depth=depth + 1)))
    return (op, draw(boolean_exprs(depth=depth + 1)), draw(boolean_exprs(depth=depth + 1)))


def _eval_expr(expr, env):
    kind = expr[0]
    if kind == "var":
        return env[expr[1]]
    if kind == "not":
        return not _eval_expr(expr[1], env)
    left = _eval_expr(expr[1], env)
    right = _eval_expr(expr[2], env)
    return {"and": left and right, "or": left or right, "xor": left != right}[kind]


def _build_bdd(manager, expr):
    kind = expr[0]
    if kind == "var":
        return manager.var(expr[1])
    if kind == "not":
        return manager.not_(_build_bdd(manager, expr[1]))
    left = _build_bdd(manager, expr[1])
    right = _build_bdd(manager, expr[2])
    return {
        "and": manager.and_,
        "or": manager.or_,
        "xor": manager.xor,
    }[kind](left, right)


@settings(max_examples=80, deadline=None)
@given(boolean_exprs())
def test_bdd_matches_truth_table(expr):
    manager = BDD()
    for name in _VARS:
        manager.add_var(name)
    node = _build_bdd(manager, expr)
    for values in itertools.product([False, True], repeat=len(_VARS)):
        env = dict(zip(_VARS, values))
        assert manager.evaluate(node, env) == _eval_expr(expr, env)


@settings(max_examples=40, deadline=None)
@given(boolean_exprs())
def test_count_sat_matches_truth_table(expr):
    manager = BDD()
    for name in _VARS:
        manager.add_var(name)
    node = _build_bdd(manager, expr)
    expected = sum(
        _eval_expr(expr, dict(zip(_VARS, values)))
        for values in itertools.product([False, True], repeat=len(_VARS))
    )
    assert manager.count_sat(node, nvars=len(_VARS)) == expected


@settings(max_examples=40, deadline=None)
@given(boolean_exprs(), st.sampled_from(_VARS))
def test_exists_is_disjunction_of_cofactors(expr, var):
    manager = BDD()
    for name in _VARS:
        manager.add_var(name)
    node = _build_bdd(manager, expr)
    quantified = manager.exists([var], node)
    expected = manager.or_(
        manager.restrict(node, {var: False}), manager.restrict(node, {var: True})
    )
    assert quantified == expected
