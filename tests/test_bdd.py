"""ROBDD package: canonicity, boolean algebra, quantification, counting."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.mc.bdd import BDD


@pytest.fixture
def bdd():
    manager = BDD()
    for name in ("a", "b", "c", "d"):
        manager.add_var(name)
    return manager


class TestBasics:
    def test_terminals(self, bdd):
        assert bdd.TRUE == 1 and bdd.FALSE == 0

    def test_variable_evaluation(self, bdd):
        a = bdd.var("a")
        assert bdd.evaluate(a, {"a": True})
        assert not bdd.evaluate(a, {"a": False})

    def test_negated_variable(self, bdd):
        na = bdd.nvar("a")
        assert bdd.evaluate(na, {"a": False})

    def test_canonicity_same_function_same_node(self, bdd):
        a, b = bdd.var("a"), bdd.var("b")
        f1 = bdd.or_(a, b)
        f2 = bdd.not_(bdd.and_(bdd.not_(a), bdd.not_(b)))  # De Morgan
        assert f1 == f2

    def test_double_negation(self, bdd):
        a = bdd.var("a")
        assert bdd.not_(bdd.not_(a)) == a

    def test_tautology_collapses_to_true(self, bdd):
        a = bdd.var("a")
        assert bdd.or_(a, bdd.not_(a)) == bdd.TRUE

    def test_contradiction_collapses_to_false(self, bdd):
        a = bdd.var("a")
        assert bdd.and_(a, bdd.not_(a)) == bdd.FALSE

    def test_xor_and_iff_duals(self, bdd):
        a, b = bdd.var("a"), bdd.var("b")
        assert bdd.xor(a, b) == bdd.not_(bdd.iff(a, b))

    def test_implies(self, bdd):
        a, b = bdd.var("a"), bdd.var("b")
        f = bdd.implies(a, b)
        assert bdd.evaluate(f, {"a": False, "b": False})
        assert not bdd.evaluate(f, {"a": True, "b": False})


class TestQuantification:
    def test_exists_removes_variable(self, bdd):
        a, b = bdd.var("a"), bdd.var("b")
        f = bdd.and_(a, b)
        g = bdd.exists(["a"], f)
        assert g == b

    def test_exists_of_tautology_in_var(self, bdd):
        a = bdd.var("a")
        assert bdd.exists(["a"], a) == bdd.TRUE

    def test_forall(self, bdd):
        a, b = bdd.var("a"), bdd.var("b")
        f = bdd.or_(a, b)
        assert bdd.forall(["a"], f) == b

    def test_rename(self, bdd):
        a, c = bdd.var("a"), bdd.var("c")
        f = bdd.rename(a, {"a": "c"})
        assert f == c

    def test_rename_swap_order_safe(self, bdd):
        # Rename d -> a moves a node *up* the order; composition handles it.
        d, b = bdd.var("d"), bdd.var("b")
        f = bdd.and_(d, b)
        g = bdd.rename(f, {"d": "a"})
        assert bdd.evaluate(g, {"a": True, "b": True})
        assert not bdd.evaluate(g, {"a": False, "b": True})

    def test_restrict(self, bdd):
        a, b = bdd.var("a"), bdd.var("b")
        f = bdd.and_(a, b)
        assert bdd.restrict(f, {"a": True}) == b
        assert bdd.restrict(f, {"a": False}) == bdd.FALSE


class TestCountingAndSat:
    def test_count_single_variable(self, bdd):
        assert bdd.count_sat(bdd.var("a")) == 8  # 1 fixed, 3 free

    def test_count_conjunction(self, bdd):
        f = bdd.and_(bdd.var("a"), bdd.var("b"))
        assert bdd.count_sat(f) == 4

    def test_count_true_false(self, bdd):
        assert bdd.count_sat(bdd.TRUE) == 16
        assert bdd.count_sat(bdd.FALSE) == 0

    def test_any_sat(self, bdd):
        f = bdd.and_(bdd.var("a"), bdd.nvar("c"))
        assignment = bdd.any_sat(f)
        full = {"a": False, "b": False, "c": False, "d": False, **assignment}
        assert bdd.evaluate(f, full)

    def test_any_sat_of_false(self, bdd):
        assert bdd.any_sat(bdd.FALSE) is None

    def test_size(self, bdd):
        a = bdd.var("a")
        assert bdd.size(a) == 3  # node + two terminals


# ----------------------------------------------------------------------
# Property-based: BDD operations agree with truth tables.
# ----------------------------------------------------------------------
_VARS = ["a", "b", "c"]


@st.composite
def boolean_exprs(draw, depth=0):
    if depth > 3 or draw(st.booleans()):
        return ("var", draw(st.sampled_from(_VARS)))
    op = draw(st.sampled_from(["and", "or", "not", "xor"]))
    if op == "not":
        return ("not", draw(boolean_exprs(depth=depth + 1)))
    return (op, draw(boolean_exprs(depth=depth + 1)), draw(boolean_exprs(depth=depth + 1)))


def _eval_expr(expr, env):
    kind = expr[0]
    if kind == "var":
        return env[expr[1]]
    if kind == "not":
        return not _eval_expr(expr[1], env)
    left = _eval_expr(expr[1], env)
    right = _eval_expr(expr[2], env)
    return {"and": left and right, "or": left or right, "xor": left != right}[kind]


def _build_bdd(manager, expr):
    kind = expr[0]
    if kind == "var":
        return manager.var(expr[1])
    if kind == "not":
        return manager.not_(_build_bdd(manager, expr[1]))
    left = _build_bdd(manager, expr[1])
    right = _build_bdd(manager, expr[2])
    return {
        "and": manager.and_,
        "or": manager.or_,
        "xor": manager.xor,
    }[kind](left, right)


@settings(max_examples=80, deadline=None)
@given(boolean_exprs())
def test_bdd_matches_truth_table(expr):
    manager = BDD()
    for name in _VARS:
        manager.add_var(name)
    node = _build_bdd(manager, expr)
    for values in itertools.product([False, True], repeat=len(_VARS)):
        env = dict(zip(_VARS, values))
        assert manager.evaluate(node, env) == _eval_expr(expr, env)


@settings(max_examples=40, deadline=None)
@given(boolean_exprs())
def test_count_sat_matches_truth_table(expr):
    manager = BDD()
    for name in _VARS:
        manager.add_var(name)
    node = _build_bdd(manager, expr)
    expected = sum(
        _eval_expr(expr, dict(zip(_VARS, values)))
        for values in itertools.product([False, True], repeat=len(_VARS))
    )
    assert manager.count_sat(node, nvars=len(_VARS)) == expected


@settings(max_examples=40, deadline=None)
@given(boolean_exprs(), st.sampled_from(_VARS))
def test_exists_is_disjunction_of_cofactors(expr, var):
    manager = BDD()
    for name in _VARS:
        manager.add_var(name)
    node = _build_bdd(manager, expr)
    quantified = manager.exists([var], node)
    expected = manager.or_(
        manager.restrict(node, {var: False}), manager.restrict(node, {var: True})
    )
    assert quantified == expected


# ----------------------------------------------------------------------
# Every registered kernel: the protocol surface behaves identically.
# ----------------------------------------------------------------------
from repro.mc.kernel import (  # noqa: E402 (kernel section below the BDD suite)
    DEFAULT_KERNEL,
    available_kernels,
    make_kernel,
    resolve_kernel,
)


@pytest.fixture(params=available_kernels())
def kernel(request):
    """One instance of every concrete kernel registered in this process
    (reference, fast, plus dd where the optional package is installed)."""
    manager = make_kernel(request.param)
    for name in ("a", "b", "c", "d"):
        manager.add_var(name)
    return manager


class TestEveryKernel:
    def test_terminals_and_canonicity(self, kernel):
        a, b = kernel.var("a"), kernel.var("b")
        assert kernel.TRUE == 1 and kernel.FALSE == 0
        assert kernel.or_(a, b) == kernel.not_(
            kernel.and_(kernel.not_(a), kernel.not_(b))
        )
        assert kernel.and_(a, kernel.not_(a)) == kernel.FALSE

    # -- count_sat edge cases ------------------------------------------
    def test_count_sat_terminals(self, kernel):
        assert kernel.count_sat(kernel.TRUE) == 16
        assert kernel.count_sat(kernel.FALSE) == 0
        assert kernel.count_sat(kernel.TRUE, nvars=0) == 1

    def test_count_sat_explicit_nvars(self, kernel):
        a = kernel.var("a")
        assert kernel.count_sat(a, nvars=1) == 1
        assert kernel.count_sat(a, nvars=4) == 8

    def test_count_sat_after_new_var(self, kernel):
        f = kernel.and_(kernel.var("a"), kernel.var("b"))
        assert kernel.count_sat(f) == 4
        kernel.add_var("e")                      # widen the space
        assert kernel.count_sat(f) == 8

    # -- any_sat edge cases --------------------------------------------
    def test_any_sat_terminals(self, kernel):
        assert kernel.any_sat(kernel.FALSE) is None
        witness = kernel.any_sat(kernel.TRUE)
        assert witness is not None               # {} or any assignment
        assert kernel.evaluate(kernel.TRUE, dict(witness))

    def test_any_sat_witness_satisfies(self, kernel):
        f = kernel.and_(
            kernel.or_(kernel.var("a"), kernel.var("b")), kernel.nvar("c")
        )
        witness = kernel.any_sat(f)
        full = {"a": False, "b": False, "c": False, "d": False, **witness}
        assert kernel.evaluate(f, full)

    def test_any_sat_single_model(self, kernel):
        f = kernel.and_(
            kernel.and_(kernel.var("a"), kernel.nvar("b")),
            kernel.and_(kernel.var("c"), kernel.nvar("d")),
        )
        witness = kernel.any_sat(f)
        full = {"a": False, "b": False, "c": False, "d": False, **witness}
        assert full == {"a": True, "b": False, "c": True, "d": False}

    # -- restrict edge cases -------------------------------------------
    def test_restrict_empty_assignment_is_identity(self, kernel):
        f = kernel.or_(kernel.var("a"), kernel.var("b"))
        assert kernel.restrict(f, {}) == f

    def test_restrict_irrelevant_variable(self, kernel):
        a = kernel.var("a")
        assert kernel.restrict(a, {"b": True}) == a
        assert kernel.restrict(a, {"b": False, "c": True}) == a

    def test_restrict_to_terminal(self, kernel):
        f = kernel.and_(kernel.var("a"), kernel.var("b"))
        assert kernel.restrict(f, {"a": True, "b": True}) == kernel.TRUE
        assert kernel.restrict(f, {"a": False}) == kernel.FALSE

    def test_restrict_is_cofactor(self, kernel):
        f = kernel.ite(kernel.var("a"), kernel.var("b"), kernel.var("c"))
        assert kernel.restrict(f, {"a": True}) == kernel.var("b")
        assert kernel.restrict(f, {"a": False}) == kernel.var("c")

    def test_restrict_then_quantify_consistency(self, kernel):
        f = kernel.xor(kernel.var("a"), kernel.var("b"))
        assert kernel.exists(["a"], f) == kernel.or_(
            kernel.restrict(f, {"a": False}), kernel.restrict(f, {"a": True})
        )

    # -- and_not (fused set difference) --------------------------------
    def test_and_not_matches_composition(self, kernel):
        a, b = kernel.var("a"), kernel.var("b")
        f = kernel.or_(a, b)
        g = kernel.and_(a, b)
        assert kernel.and_not(f, g) == kernel.and_(f, kernel.not_(g))
        assert kernel.and_not(f, g) == kernel.xor(a, b)

    def test_and_not_trivial_rules(self, kernel):
        a = kernel.var("a")
        assert kernel.and_not(kernel.FALSE, a) == kernel.FALSE
        assert kernel.and_not(a, kernel.TRUE) == kernel.FALSE
        assert kernel.and_not(a, a) == kernel.FALSE
        assert kernel.and_not(a, kernel.FALSE) == a
        assert kernel.and_not(kernel.TRUE, a) == kernel.not_(a)


@settings(max_examples=40, deadline=None)
@given(boolean_exprs(), boolean_exprs())
def test_and_not_matches_truth_table_on_every_kernel(left, right):
    for name in available_kernels():
        manager = make_kernel(name)
        for var in _VARS:
            manager.add_var(var)
        diff = manager.and_not(
            _build_bdd(manager, left), _build_bdd(manager, right)
        )
        for values in itertools.product([False, True], repeat=len(_VARS)):
            env = dict(zip(_VARS, values))
            expected = _eval_expr(left, env) and not _eval_expr(right, env)
            assert manager.evaluate(diff, env) == expected


class TestKernelRegistry:
    def test_auto_resolves_to_fast(self):
        assert DEFAULT_KERNEL == "fast"
        assert resolve_kernel("auto") == "fast"
        assert type(make_kernel("auto")).__name__ == "FastKernel"

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            resolve_kernel("zdd")

    def test_dd_gated_on_import(self):
        # The optional dd/CUDD kernel is opt-in where installed and a
        # clear error where not — and auto never resolves to it.
        try:
            import dd.autoref  # noqa: F401
        except ImportError:
            assert "dd" not in available_kernels()
            with pytest.raises(ValueError, match="dd"):
                resolve_kernel("dd")
        else:
            assert "dd" in available_kernels()
            assert resolve_kernel("dd") == "dd"
        assert resolve_kernel("auto") != "dd"
