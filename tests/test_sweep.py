"""Multi-app sweep engine: candidate enumeration and union sweeps."""

import pytest

from repro.corpus import groundtruth
from repro.corpus.batch import analyze_batch
from repro.corpus.sweep import (
    MODE_CHANNEL,
    SweepOutcome,
    environment_only_ids,
    groups_sharing_devices,
    interaction_channels,
    pairs,
    sweep_dataset,
    sweep_environments,
)


class TestInteractionChannels:
    def test_shared_handle_is_a_channel(self):
        channels = interaction_channels(["App1", "App15"])
        assert channels["hall_light"] == ("App1", "App15")
        assert channels["motion_sensor"] == ("App1", "App15")

    def test_unshared_handles_are_not_channels(self):
        channels = interaction_channels(["App1", "App2"])
        assert "hall_light" not in channels

    def test_mode_channel_requires_a_writer(self):
        # O30 and O31 both *read* the mode; without a writer in the
        # universe the broadcast connects nobody.
        assert MODE_CHANNEL not in interaction_channels(["O30", "O31"])
        channels = interaction_channels(["O7", "O30", "O31"])
        assert channels[MODE_CHANNEL] == ("O7", "O30", "O31")

    def test_dataset_name_accepted(self):
        channels = interaction_channels("maliot")
        assert channels["hall_light"] == ("App1", "App15")

    def test_mode_usage_in_comments_ignored(self, monkeypatch):
        import repro.corpus.sweep as sweep_mod
        from repro.platform.smartapp import SmartApp

        source = (
            'definition(name: "X")\n'
            'preferences { section("s") { input "sw", "capability.switch" } }\n'
            "// TODO: call setLocationMode when location.mode support lands\n"
            "/* sendLocationEvent would also work */\n"
            'def installed() { subscribe(sw, "switch.on", h) }\n'
            "def h(evt) { sw.off() }\n"
        )
        monkeypatch.setattr(sweep_mod, "load_source", lambda _aid: source)
        monkeypatch.setattr(
            sweep_mod, "load_app", lambda aid: SmartApp.from_source(source, name=aid)
        )
        sweep_mod._app_channels.cache_clear()
        try:
            _handles, reads_mode, writes_mode = sweep_mod._app_channels("Fake1")
            assert not reads_mode
            assert not writes_mode
        finally:
            sweep_mod._app_channels.cache_clear()


class TestPairs:
    def test_maliot_pairs_include_appendix_c_environments(self):
        found = {(a, b) for a, b, _channels in pairs("maliot")}
        assert ("App1", "App15") in found
        assert ("App16", "App17") in found
        assert ("App12", "App13") in found

    def test_pair_channels_reported(self):
        by_pair = {(a, b): ch for a, b, ch in pairs(["App1", "App15"])}
        assert set(by_pair[("App1", "App15")]) == {"hall_light", "motion_sensor"}

    def test_non_sharing_apps_not_paired(self):
        assert list(pairs(["App1", "App2"])) == []

    def test_mode_reader_pairs_need_a_writer(self):
        # O30 and O31 only *read* the mode: the broadcast connects them to
        # the writer O7, never to each other.
        found = {(a, b) for a, b, _ch in pairs(["O7", "O30", "O31"])}
        assert found == {("O7", "O30"), ("O7", "O31")}


class TestGroupsSharingDevices:
    @pytest.mark.parametrize(
        "group", groundtruth.TABLE4_GROUPS, ids=lambda g: g.group_id
    )
    def test_table4_groups_recovered(self, group):
        # Each curated paper group is one interaction cluster: passed as a
        # universe it comes back exactly, as a single component.
        assert groups_sharing_devices(group.apps) == [tuple(group.apps)]

    @pytest.mark.parametrize(
        "env_ids", [ids for ids, _prop in groundtruth.MALIOT_ENVIRONMENTS]
    )
    def test_maliot_environments_recovered(self, env_ids):
        assert groups_sharing_devices(env_ids) == [tuple(env_ids)]

    def test_dataset_enumeration_contains_appendix_c_pair(self):
        assert ("App1", "App15") in groups_sharing_devices("maliot")

    def test_isolated_apps_dropped(self):
        # App3 shares nothing with App1/App15.
        assert groups_sharing_devices(["App1", "App15", "App3"]) == [
            ("App1", "App15")
        ]
        assert groups_sharing_devices(["App1", "App3"]) == []


class TestSweepEnvironments:
    def test_maliot_environments_reveal_paper_properties(self):
        groups = [ids for ids, _prop in groundtruth.MALIOT_ENVIRONMENTS]
        outcomes = sweep_environments(groups, jobs=1)
        assert [o.group for o in outcomes] == [tuple(g) for g in groups]
        for outcome, (_ids, prop) in zip(outcomes, groundtruth.MALIOT_ENVIRONMENTS):
            assert not outcome.skipped
            assert prop in outcome.violated_ids(), outcome.group

    def test_table4_sweep_reproduces_paper_totals(self):
        outcomes = sweep_environments(
            [group.apps for group in groundtruth.TABLE4_GROUPS], jobs=1
        )
        confirmed = 0
        for outcome, group in zip(outcomes, groundtruth.TABLE4_GROUPS):
            got = environment_only_ids(outcome.environment)
            assert set(group.violated) <= got, group.group_id
            confirmed += len(got & set(group.violated))
        assert confirmed == groundtruth.TABLE4_PROPERTY_COUNT  # the 11

    def test_sweep_reuses_analyses_without_reparsing(self, monkeypatch):
        from repro.platform.smartapp import SmartApp

        group = tuple(groundtruth.MALIOT_ENVIRONMENTS[1][0])  # App1+App15
        analyze_batch(list(group), jobs=1)  # warm the in-memory cache

        def boom(*_args, **_kwargs):
            raise AssertionError("sweep re-parsed an app source")

        monkeypatch.setattr(SmartApp, "from_source", boom)
        outcomes = sweep_environments([group], jobs=1)
        assert not outcomes[0].skipped

    def test_explicit_oversized_group_failed_not_raised(self):
        # Forcing the explicit backend restores the old budget behavior:
        # the group comes back failed (with the error), never raised.
        group = tuple(groundtruth.TABLE4_GROUPS[2].apps)  # G.3: 1536 states
        outcomes = sweep_environments(
            [group], jobs=1, max_union_states=100, backend="explicit"
        )
        assert outcomes[0].failed
        assert outcomes[0].skipped  # backwards-compatible alias
        assert outcomes[0].backend is None
        assert "exceed" in outcomes[0].error
        assert outcomes[0].violated_ids() == set()

    def test_auto_backend_checks_oversized_group_symbolically(self):
        # The same group under the same tiny budget is *checked* by the
        # default auto backend — symbolically, with the same violations.
        group = tuple(groundtruth.TABLE4_GROUPS[2].apps)  # G.3: 1536 states
        outcomes = sweep_environments([group], jobs=1, max_union_states=100)
        assert not outcomes[0].failed
        assert outcomes[0].backend == "symbolic"
        assert set(groundtruth.TABLE4_GROUPS[2].violated) <= outcomes[0].violated_ids()

    def test_duplicate_groups_get_one_result_per_input(self):
        # Analyzed once, but the output stays zip-safe with the input.
        group = ("App1", "App15")
        outcomes = sweep_environments([group, group], jobs=1)
        assert len(outcomes) == 2
        assert outcomes[0] is outcomes[1]

    def test_disk_cache_threaded_through(self, tmp_path):
        from repro.corpus import batch
        from repro.corpus.diskcache import DiskCache

        batch.clear_cache()
        try:
            sweep_environments([("App1", "App15")], jobs=1, cache_dir=tmp_path)
            assert len(DiskCache(tmp_path).entries()) == 2
        finally:
            batch.clear_cache()


class TestSweepCaching:
    def test_warm_sweep_served_from_sweep_cache(self, tmp_path, monkeypatch):
        from repro.corpus import batch, sweep as sweep_mod
        from repro.corpus.diskcache import SweepCache

        group = ("App1", "App15")
        batch.clear_cache()
        try:
            cold = sweep_environments([group], jobs=1, cache_dir=tmp_path)
            assert not cold[0].cached
            assert len(SweepCache(tmp_path).entries()) == 1

            # A warm run must not build/check any union model — kill the
            # checker to prove the result comes from the sweep cache.
            batch.clear_cache()

            def boom(*_args, **_kwargs):
                raise AssertionError("warm sweep re-checked a union model")

            monkeypatch.setattr(sweep_mod, "_union_outcome", boom)
            warm = sweep_environments([group], jobs=1, cache_dir=tmp_path)
            assert warm[0].cached
            assert warm[0].violated_ids() == cold[0].violated_ids()
            assert warm[0].backend == cold[0].backend
        finally:
            batch.clear_cache()

    def test_sweep_cache_key_ignores_member_order(self, tmp_path):
        from repro.corpus import batch

        batch.clear_cache()
        try:
            sweep_environments([("App1", "App15")], jobs=1, cache_dir=tmp_path)
            flipped = sweep_environments(
                [("App15", "App1")], jobs=1, cache_dir=tmp_path
            )
            assert flipped[0].cached
        finally:
            batch.clear_cache()

    def test_failed_outcomes_not_cached(self, tmp_path):
        from repro.corpus import batch
        from repro.corpus.diskcache import SweepCache

        group = tuple(groundtruth.TABLE4_GROUPS[2].apps)
        batch.clear_cache()
        try:
            outcomes = sweep_environments(
                [group], jobs=1, cache_dir=tmp_path,
                max_union_states=100, backend="explicit",
            )
            assert outcomes[0].failed
            assert SweepCache(tmp_path).entries() == []
        finally:
            batch.clear_cache()


class TestSweepDataset:
    def test_maliot_group_sweep_checks_every_group(self):
        outcomes = sweep_dataset("maliot", jobs=1)
        by_group = {o.group: o for o in outcomes}
        appendix_pair = by_group[("App1", "App15")]
        assert "S.1" in appendix_pair.violated_ids()
        assert appendix_pair.backend == "explicit"  # 4 states: stays explicit
        # The big interaction cluster used to blow the budget and come
        # back skipped; the auto backend now checks it symbolically, and
        # it reveals the co-installation properties (P.3: the
        # App12-App14 smoke/lock chain; P.14: App16+App17's
        # mode-triggered critical-switch kills).
        assert not any(o.failed for o in outcomes)
        cluster = next(o for o in outcomes if len(o.group) > 2)
        assert cluster.backend == "symbolic"
        assert cluster.environment.state_estimate > 10_000
        assert {"P.3", "P.14"} <= cluster.violated_ids()

    def test_maliot_pairwise_sweep(self):
        outcomes = sweep_dataset("maliot", jobs=1, pairwise=True)
        by_group = {o.group: o for o in outcomes}
        assert "P.14" in by_group[("App16", "App17")].violated_ids()
        assert "S.1" in by_group[("App1", "App15")].violated_ids()


class TestSweepOutcome:
    def test_skipped_outcome_shape(self):
        outcome = SweepOutcome(group=("A", "B"), environment=None, error="boom")
        assert outcome.skipped
        assert outcome.violated_ids() == set()
