"""IR builder, CFG/ICFG, reaching definitions, call graphs."""

import pytest

from repro.ir import build_ir
from repro.ir.cfg import ICFG, NodeKind, ReachingDefinitions, build_cfg
from repro.ir.callgraph import build_call_graph
from repro.ir.ir import PermissionKind
from repro.platform import SmartApp
from repro.platform.events import EventKind

THERMO = '''
definition(name: "T")
preferences {
    section("C") {
        input "ther", "capability.thermostat", required: true
        input "power_meter", "capability.powerMeter", required: true
        input "price_kwh", "number", title: "threshold", required: true
        input "the_switch", "capability.switch", required: true
    }
}
def installed(){ initialize() }
def updated(){ unsubscribe(); initialize() }
def initialize(){
    subscribe(location, "mode", modeChangeHandler)
    subscribe(power_meter, "power", powerHandler)
    subscribe(app, appTouch, touchHandler)
}
def modeChangeHandler(evt) {
    def temp = 68
    setTemp(temp)
}
def setTemp(t){ ther.setHeatingSetpoint(t) }
def powerHandler(evt){
    if (get_power() > 50) { the_switch.off() }
    runIn(300, recheck)
}
def recheck(){ the_switch.on() }
def get_power(){
    return power_meter.currentValue("power")
}
def touchHandler(evt){ the_switch.on() }
'''


@pytest.fixture(scope="module")
def ir():
    return build_ir(SmartApp.from_source(THERMO))


class TestPermissions:
    def test_device_permissions(self, ir):
        handles = {p.handle for p in ir.devices()}
        assert handles == {"ther", "power_meter", "the_switch"}

    def test_user_inputs(self, ir):
        assert [p.handle for p in ir.user_inputs()] == ["price_kwh"]

    def test_permission_kinds(self, ir):
        assert ir.device("ther").kind is PermissionKind.DEVICE
        assert ir.user_input("price_kwh").kind is PermissionKind.USER_DEFINED

    def test_capabilities_used(self, ir):
        assert ir.capabilities_used() == {"thermostat", "powerMeter", "switch"}

    def test_render_matches_paper_format(self, ir):
        text = ir.render()
        assert "input (ther, thermostat, type:device)" in text
        assert "input (price_kwh, number, type:user_defined)" in text


class TestSubscriptions:
    def test_mode_subscription(self, ir):
        events = [s.event for s in ir.subscriptions]
        assert any(e.kind is EventKind.MODE for e in events)

    def test_device_subscription(self, ir):
        events = [s.event for s in ir.subscriptions]
        assert any(
            e.kind is EventKind.DEVICE and e.device == "power_meter" for e in events
        )

    def test_app_touch_subscription(self, ir):
        events = [s.event for s in ir.subscriptions]
        assert any(e.kind is EventKind.APP_TOUCH for e in events)

    def test_run_in_creates_timer_entry(self, ir):
        handlers = {e.handler for e in ir.entry_points}
        assert "recheck" in handlers
        timer_entries = [
            e for e in ir.entry_points if e.event.kind is EventKind.TIMER
        ]
        assert timer_entries

    def test_entry_point_per_subscription(self, ir):
        assert len(ir.entry_points) == len(
            {(s.event, s.handler) for s in ir.subscriptions}
        )

    def test_value_subscription_split(self):
        app = SmartApp.from_source('''
definition(name: "V")
preferences { section("s") { input "ws", "capability.waterSensor" } }
def installed() { subscribe(ws, "water.wet", h) }
def h(evt) { }
''')
        ir2 = build_ir(app)
        event = ir2.subscriptions[0].event
        assert (event.attribute, event.value) == ("water", "wet")

    def test_dynamic_preferences_flagged(self):
        app = SmartApp.from_source('''
definition(name: "D")
preferences {
    dynamicPage(name: "p") {
        section("s") { input "sw", "capability.switch" }
    }
}
def installed() { }
''')
        assert build_ir(app).has_dynamic_preferences

    def test_sink_calls_recorded(self):
        app = SmartApp.from_source('''
definition(name: "S")
preferences { section("s") { input "p", "capability.presenceSensor" } }
def installed() { subscribe(p, "presence", h) }
def h(evt) { sendSms("555", "gone") }
''')
        ir2 = build_ir(app)
        assert [name for name, _line in ir2.sink_calls] == ["sendSms"]


class TestCFG:
    def test_straight_line(self):
        app = SmartApp.from_source("def f() { a()\n b() }")
        cfg = build_cfg(app.module.methods["f"])
        stmts = cfg.statements()
        assert len(stmts) == 2
        assert cfg.nodes[cfg.entry].kind is NodeKind.ENTRY

    def test_if_creates_branch(self):
        app = SmartApp.from_source("def f() { if (x) { a() } else { b() } }")
        cfg = build_cfg(app.module.methods["f"])
        branches = [n for n in cfg.nodes.values() if n.kind is NodeKind.BRANCH]
        assert len(branches) == 1
        labels = {label for _dst, label in cfg.succ[branches[0].id]}
        assert labels == {"true", "false"}

    def test_return_edges_to_exit(self):
        app = SmartApp.from_source("def f() { if (x) { return 1 }\n b() }")
        cfg = build_cfg(app.module.methods["f"])
        returns = [n for n in cfg.statements() if "Return" in type(n.stmt).__name__]
        assert all(
            any(dst == cfg.exit for dst, _l in cfg.succ[r.id]) for r in returns
        )

    def test_while_loops_back(self):
        app = SmartApp.from_source("def f() { while (x) { a() } }")
        cfg = build_cfg(app.module.methods["f"])
        branch = [n for n in cfg.nodes.values() if n.kind is NodeKind.BRANCH][0]
        body = [n for n in cfg.statements()][0]
        assert any(dst == branch.id for dst, _l in cfg.succ[body.id])

    def test_every_node_reaches_exit(self):
        app = SmartApp.from_source(
            "def f() { if (a) { x() } else { y() }\n z() }"
        )
        cfg = build_cfg(app.module.methods["f"])
        # BFS backwards from exit
        seen = {cfg.exit}
        frontier = [cfg.exit]
        while frontier:
            node = frontier.pop()
            for pred in cfg.pred[node]:
                if pred not in seen:
                    seen.add(pred)
                    frontier.append(pred)
        assert set(cfg.nodes) == seen


class TestICFGAndReachingDefs:
    def test_call_sites_found(self):
        app = SmartApp.from_source(THERMO)
        icfg = ICFG(app.module.methods)
        callees = {site.callee for site in icfg.call_sites}
        assert {"initialize", "setTemp", "get_power"} <= callees

    def test_param_binding_reaches_callee(self):
        app = SmartApp.from_source(THERMO)
        icfg = ICFG(app.module.methods)
        rd = ReachingDefinitions(icfg)
        target = [
            n
            for n in icfg.nodes.values()
            if n.method == "setTemp" and n.kind is NodeKind.STMT
        ][0]
        defs = rd.reaching(target.id, "t")
        assert defs, "parameter binding should reach the call body"

    def test_local_def_reaches_use(self):
        app = SmartApp.from_source("def f() { def x = 1\n g(x) }")
        icfg = ICFG(app.module.methods)
        rd = ReachingDefinitions(icfg)
        use = [n for n in icfg.nodes.values() if n.line == 1 and n.stmt and "g" in str(getattr(n.stmt, 'expr', ''))]
        stmts = [n for n in icfg.nodes.values() if n.kind is NodeKind.STMT]
        last = stmts[-1]
        assert rd.reaching(last.id, "x")

    def test_kill_shadows_earlier_def(self):
        app = SmartApp.from_source("def f() { x = 1\n x = 2\n g(x) }")
        icfg = ICFG(app.module.methods)
        rd = ReachingDefinitions(icfg)
        stmts = [n for n in icfg.nodes.values() if n.kind is NodeKind.STMT]
        defs = rd.reaching(stmts[-1].id, "x")
        assert len(defs) == 1

    def test_branch_merges_defs(self):
        app = SmartApp.from_source(
            "def f() { if (c) { x = 1 } else { x = 2 }\n g(x) }"
        )
        icfg = ICFG(app.module.methods)
        rd = ReachingDefinitions(icfg)
        stmts = [n for n in icfg.nodes.values() if n.kind is NodeKind.STMT]
        defs = rd.reaching(stmts[-1].id, "x")
        assert len(defs) == 2

    def test_state_field_sensitive(self):
        app = SmartApp.from_source(
            "def f() { state.a = 1\n state.b = 2\n g(state.a) }"
        )
        icfg = ICFG(app.module.methods)
        rd = ReachingDefinitions(icfg)
        stmts = [n for n in icfg.nodes.values() if n.kind is NodeKind.STMT]
        defs_a = rd.reaching(stmts[-1].id, "state.a")
        defs_b = rd.reaching(stmts[-1].id, "state.b")
        assert len(defs_a) == 1
        assert len(defs_b) == 1


class TestCallGraph:
    def test_direct_calls(self):
        app = SmartApp.from_source(THERMO)
        graph = build_call_graph(app.module.methods, "modeChangeHandler")
        assert "setTemp" in graph.nodes
        assert not graph.uses_reflection

    def test_reflection_over_approximates(self):
        app = SmartApp.from_source('''
def h(evt) { "$name"() }
def foo() { }
def bar() { }
def installed() { }
''')
        graph = build_call_graph(app.module.methods, "h")
        assert graph.uses_reflection
        assert {"foo", "bar"} <= graph.nodes
        assert "installed" not in graph.nodes  # lifecycle excluded
        assert all(e.reflective for e in graph.edges)

    def test_unknown_root(self):
        graph = build_call_graph({}, "missing")
        assert not graph.nodes
