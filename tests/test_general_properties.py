"""General properties S.1-S.5 on transition rules."""

import pytest

from repro.analysis.symexec import SymbolicExecutor
from repro.ir import build_ir
from repro.platform import SmartApp
from repro.properties.general import (
    check_general_properties,
    check_s1,
    check_s2,
    check_s3,
    check_s4,
    check_s5,
    effective_event,
)


def origins_of(source, name="A"):
    ir = build_ir(SmartApp.from_source(source, name=name))
    rules = SymbolicExecutor(ir).run_all()
    return ir, [(name, s) for group in rules.values() for s in group]


HEADER = '''
definition(name: "X")
preferences {
    section("S") {
        input "the_switch", "capability.switch", required: true
        input "the_motion", "capability.motionSensor", required: true
        input "the_contact", "capability.contactSensor", required: true
    }
}
'''


class TestS1:
    def test_conflicting_values_one_path(self):
        _ir, rules = origins_of(HEADER + '''
def installed(){ subscribe(app, appTouch, h) }
def h(evt){ the_switch.on()\n the_switch.off() }
''')
        assert [v.property_id for v in check_s1(rules)] == ["S.1"]

    def test_branches_are_separate_paths(self):
        _ir, rules = origins_of(HEADER + '''
def installed(){ subscribe(the_motion, "motion", h) }
def h(evt){
    if (evt.value == "active") { the_switch.on() } else { the_switch.off() }
}
''')
        assert not check_s1(rules)

    def test_cross_app_same_event(self):
        _ir1, rules1 = origins_of(HEADER + '''
def installed(){ subscribe(the_contact, "contact.open", h) }
def h(evt){ the_switch.on() }
''', "A")
        _ir2, rules2 = origins_of(HEADER + '''
def installed(){ subscribe(the_contact, "contact.open", h) }
def h(evt){ the_switch.off() }
''', "B")
        violations = check_s1(rules1 + rules2)
        assert violations
        assert violations[0].apps == ("A", "B")


class TestS2:
    def test_repeated_write_one_path(self):
        _ir, rules = origins_of(HEADER + '''
def installed(){ subscribe(the_contact, "contact.closed", h) }
def h(evt){ the_switch.off()\n the_switch.off() }
''')
        assert [v.property_id for v in check_s2(rules)] == ["S.2"]

    def test_single_write_clean(self):
        _ir, rules = origins_of(HEADER + '''
def installed(){ subscribe(the_contact, "contact.closed", h) }
def h(evt){ the_switch.off() }
''')
        assert not check_s2(rules)

    def test_cross_app_duplicate_command(self):
        source = HEADER + '''
def installed(){ subscribe(the_contact, "contact.closed", h) }
def h(evt){ the_switch.off() }
'''
        _i1, rules1 = origins_of(source, "A")
        _i2, rules2 = origins_of(source, "B")
        violations = check_s2(rules1 + rules2)
        assert violations and violations[0].apps == ("A", "B")


class TestS3:
    def test_complement_events_same_value(self):
        _ir, rules = origins_of(HEADER + '''
def installed(){
    subscribe(the_contact, "contact.open", h1)
    subscribe(the_contact, "contact.closed", h2)
}
def h1(evt){ the_switch.on() }
def h2(evt){ the_switch.on() }
''')
        assert [v.property_id for v in check_s3(rules)] == ["S.3"]

    def test_complement_events_different_values_clean(self):
        _ir, rules = origins_of(HEADER + '''
def installed(){
    subscribe(the_contact, "contact.open", h1)
    subscribe(the_contact, "contact.closed", h2)
}
def h1(evt){ the_switch.on() }
def h2(evt){ the_switch.off() }
''')
        assert not check_s3(rules)

    def test_effective_event_refined_from_guard(self):
        _ir, rules = origins_of(HEADER + '''
def installed(){ subscribe(the_motion, "motion", h) }
def h(evt){ if (evt.value == "active") { the_switch.on() } }
''')
        refined = [effective_event(s) for _a, s in rules if s.actions]
        assert refined[0].value == "active"


class TestS4:
    def test_non_complement_race(self):
        _ir, rules = origins_of(HEADER + '''
def installed(){
    subscribe(the_contact, "contact.open", h1)
    subscribe(the_motion, "motion.active", h2)
}
def h1(evt){ the_switch.off() }
def h2(evt){ the_switch.on() }
''')
        assert [v.property_id for v in check_s4(rules)] == ["S.4"]

    def test_same_attribute_events_cannot_race(self):
        _ir, rules = origins_of(HEADER + '''
def installed(){
    subscribe(the_motion, "motion.active", h1)
    subscribe(the_motion, "motion.inactive", h2)
}
def h1(evt){ the_switch.on() }
def h2(evt){ the_switch.off() }
''')
        assert not check_s4(rules)

    def test_guarded_disjoint_paths_cannot_race(self):
        _ir, rules = origins_of(HEADER + '''
preferences { section("T") { input "t", "number" } }
def installed(){
    subscribe(the_contact, "contact.open", h1)
    subscribe(the_motion, "motion.active", h2)
}
def h1(evt){ if (state.armed == true) { the_switch.off() } }
def h2(evt){ if (state.armed != true) { the_switch.on() } }
''')
        # state.armed == true and != true cannot hold together.
        assert not check_s4(rules)


class TestS5:
    def test_unsubscribed_value_dispatch(self):
        ir, _rules = origins_of(HEADER + '''
def installed(){ subscribe(the_motion, "motion", onMotion) }
def onMotion(evt){ }
def modeHandler(evt){
    if (evt.value == "away") { the_switch.off() }
}
''')
        violations = check_s5(ir)
        assert [v.property_id for v in violations] == ["S.5"]
        assert "modeHandler" in violations[0].description

    def test_covered_values_clean(self):
        ir, _rules = origins_of(HEADER + '''
def installed(){ subscribe(the_motion, "motion", onMotion) }
def onMotion(evt){
    if (evt.value == "active") { the_switch.on() }
    if (evt.value == "inactive") { the_switch.off() }
}
''')
        assert not check_s5(ir)

    def test_mode_subscription_covers_mode_names(self):
        ir, _rules = origins_of(HEADER + '''
def installed(){ subscribe(location, "mode", onMode) }
def onMode(evt){ if (evt.value == "away") { the_switch.off() } }
''')
        assert not check_s5(ir)


class TestReflectionFiltering:
    def test_reflective_writes_excluded_from_s_checks(self):
        _ir, rules = origins_of(HEADER + '''
def installed(){ subscribe(app, appTouch, h) }
def h(evt){ "$state.m"() }
def up(){ the_switch.on() }
def down(){ the_switch.off() }
''')
        all_violations = check_s1(rules) + check_s2(rules) + check_s4(rules)
        assert not all_violations


def test_check_general_properties_aggregates():
    ir, rules = origins_of(HEADER + '''
def installed(){ subscribe(app, appTouch, h) }
def h(evt){ the_switch.on()\n the_switch.off()\n the_switch.on() }
''')
    ids = {v.property_id for v in check_general_properties(rules, ir=ir)}
    assert "S.1" in ids and "S.2" in ids
