"""Canonical household forms: the dedup equivalence, property-tested.

The fleet cache key promises exactly one equivalence: households that
differ only by role-preserving device/app renaming and member order map
to one key *and* one violation verdict, while households wired
differently (a different shared-channel structure, a role-changing
rename) separate.  These tests exercise both directions — including the
verdict half, by actually union-checking a renamed household pair.
"""

import random

import pytest

from repro.corpus.loader import scoped_registration
from repro.fleet.canon import (
    RENAME_TAGS,
    app_shape,
    household_key,
    household_key_for_sources,
    rename_variant,
)
from repro.fleet.driver import FleetOptions, check_household
from repro.fleet.profiles import Household, Member
from repro.gen.generator import generate_cluster


def _source(name: str, handle: str, shared: str | None = None) -> str:
    """A minimal two-device app: ``handle`` plus an optional second
    input named ``shared`` (the household-overlap knob)."""
    second = (
        f'input "{shared}", "capability.switch"\n' if shared is not None else ""
    )
    return (
        f'definition(name: "{name}", description: "canon test")\n'
        'preferences { section("s") {\n'
        f'input "{handle}", "capability.switch"\n'
        f"{second}"
        "} }\n"
        f'def installed() {{ subscribe({handle}, "switch.on", h) }}\n'
        f"def h(evt) {{ {handle}.off() }}\n"
    )


class TestAppShape:
    def test_rename_variant_preserves_shape(self):
        source = _source("A", "plain_dev")
        shape = app_shape(source)
        for tag in RENAME_TAGS:
            variant = app_shape(rename_variant(source, tag))
            # Same signature and descriptors; only the raw handle
            # spellings (the devices-map keys) differ.
            assert variant.signature == shape.signature
            assert sorted(variant.devices.values()) == sorted(
                shape.devices.values()
            )

    def test_comments_and_names_do_not_enter_the_shape(self):
        plain = _source("A", "plain_dev")
        noisy = "// a comment\n" + _source("Completely Different Name", "plain_dev")
        assert app_shape(noisy).signature == app_shape(plain).signature

    def test_role_changing_rename_changes_the_shape(self):
        # ``hall_light`` carries the "light" role; ``hall_dev`` is
        # generic.  P.12-style properties read that difference, so the
        # shapes must separate even though the sources are otherwise
        # byte-identical after handle substitution.
        generic = _source("A", "hall_dev")
        light = _source("A", "hall_light")
        assert app_shape(generic).signature != app_shape(light).signature

    def test_rename_tag_validation(self):
        source = _source("A", "plain_dev")
        with pytest.raises(ValueError, match="alphabetic"):
            rename_variant(source, "v2")
        with pytest.raises(ValueError, match="role keyword"):
            rename_variant(source, "heat")


class TestHouseholdKey:
    def _cluster_sources(self, seed: int = 11, size: int = 3) -> list[str]:
        return [app.source for app in generate_cluster(seed, 0, size=size)]

    def test_renamed_and_permuted_household_same_key(self):
        sources = self._cluster_sources()
        key = household_key_for_sources(sources)
        for tag in ("rev", "iso"):
            renamed = [rename_variant(source, tag) for source in sources]
            rng = random.Random(tag)
            rng.shuffle(renamed)
            assert household_key_for_sources(renamed) == key

    def test_member_permutation_alone_same_key(self):
        sources = self._cluster_sources(seed=12)
        key = household_key_for_sources(sources)
        assert household_key_for_sources(list(reversed(sources))) == key

    def test_different_capability_overlap_distinct_keys(self):
        # Same two member shapes; in one household they share a switch
        # channel, in the other each holds a private handle.  The
        # sweep engine checks these differently, so the keys must too.
        sharing = [
            _source("A", "sw_main", shared="sw_shared"),
            _source("B", "sw_other", shared="sw_shared"),
        ]
        disjoint = [
            _source("A", "sw_main", shared="sw_sharedx"),
            _source("B", "sw_other", shared="sw_sharedy"),
        ]
        assert household_key_for_sources(sharing) != household_key_for_sources(
            disjoint
        )

    def test_who_shares_matters(self):
        a = _source("A", "sw_a", shared="sw_shared")
        b = _source("B", "sw_b", shared="sw_shared")
        c = _source("C", "sw_c")
        c_sharing = _source("C", "sw_shared")
        # {A+B share, C apart} vs {A+B+C all share}: different wiring.
        assert household_key_for_sources([a, b, c]) != household_key_for_sources(
            [a, b, c_sharing]
        )

    def test_key_ignores_raw_handle_spelling_of_the_channel(self):
        # The *name* of the shared channel is wiring-irrelevant: only
        # which members share it and under what descriptor.
        one = [
            _source("A", "sw_main", shared="sw_shared"),
            _source("B", "sw_other", shared="sw_shared"),
        ]
        other = [
            _source("A", "sw_main", shared="sw_conduit"),
            _source("B", "sw_other", shared="sw_conduit"),
        ]
        assert household_key_for_sources(one) == household_key_for_sources(other)


class TestVerdictParity:
    def test_renamed_household_same_violation_set(self):
        """The dedup soundness claim itself: a renamed household's
        union check reports the identical violation set, so serving it
        the original's cached verdict is exact, not approximate."""
        apps = generate_cluster(21, 0, size=2)
        original = Household(
            template=0,
            variant=0,
            members=tuple(
                Member(f"CanonA{i}", app.source) for i, app in enumerate(apps)
            ),
        )
        renamed = Household(
            template=0,
            variant=1,
            members=tuple(
                Member(f"CanonB{i}", rename_variant(app.source, "twin"))
                for i, app in enumerate(reversed(apps))
            ),
        )
        key = household_key_for_sources([m.source for m in original.members])
        assert (
            household_key_for_sources([m.source for m in renamed.members]) == key
        )
        options = FleetOptions()
        with scoped_registration():
            first = check_household(original, key, options)
            second = check_household(renamed, key, options)
        assert not first.failed and not second.failed
        assert first.violated_ids() == second.violated_ids()
