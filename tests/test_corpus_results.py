"""End-to-end reproduction of the paper's evaluation results.

These are the headline claims of Sec. 6 run as tests; the benchmark harness
re-runs them with timing (benchmarks/).  Analyses are cached per module to
keep the suite fast.
"""

import pytest

from repro import analyze_app, analyze_environment
from repro.corpus import groundtruth
from repro.corpus.loader import load_app, load_corpus, load_environment_sources


@pytest.fixture(scope="module")
def thirdparty_analyses():
    return {
        app_id: analyze_app(app)
        for app_id, app in load_corpus("thirdparty").items()
    }


@pytest.fixture(scope="module")
def official_analyses():
    return {
        app_id: analyze_app(app) for app_id, app in load_corpus("official").items()
    }


@pytest.fixture(scope="module")
def maliot_analyses():
    return {
        app_id: analyze_app(app) for app_id, app in load_corpus("maliot").items()
    }


class TestTable3:
    def test_flagged_thirdparty_apps_match(self, thirdparty_analyses):
        for app_id, expected in groundtruth.TABLE3_INDIVIDUAL.items():
            got = thirdparty_analyses[app_id].violated_ids()
            assert got == expected, f"{app_id}: got {got}, want {expected}"

    def test_other_thirdparty_apps_clean(self, thirdparty_analyses):
        for app_id, analysis in thirdparty_analyses.items():
            if app_id in groundtruth.TABLE3_INDIVIDUAL:
                continue
            assert not analysis.violations, (
                app_id,
                [v.short() for v in analysis.violations],
            )

    def test_nine_apps_ten_property_pairs(self, thirdparty_analyses):
        flagged = {
            app_id: a.violated_ids()
            for app_id, a in thirdparty_analyses.items()
            if a.violations
        }
        assert len(flagged) == 9
        assert sum(len(ids) for ids in flagged.values()) == 10


class TestOfficialsClean:
    def test_no_official_app_flagged(self, official_analyses):
        for app_id, analysis in official_analyses.items():
            assert not analysis.violations, (
                app_id,
                [v.short() for v in analysis.violations],
            )

    def test_official_max_states_is_180(self, official_analyses):
        sizes = {a.model.size() for a in official_analyses.values()}
        assert max(sizes) == 180  # the paper's post-reduction maximum


class TestTable4:
    @pytest.mark.parametrize("group", groundtruth.TABLE4_GROUPS, ids=lambda g: g.group_id)
    def test_group_violations_cover_paper_set(self, group):
        env = analyze_environment(load_environment_sources(list(group.apps)))
        individual = set()
        for analysis in env.analyses:
            individual |= analysis.violated_ids()
        env_only = {
            v.property_id
            for v in env.violations
            if len(v.apps) > 1 or v.property_id not in individual
        }
        assert set(group.violated) <= env_only, (
            group.group_id,
            sorted(env_only),
        )


class TestMaliot:
    def test_individual_detections(self, maliot_analyses):
        for entry in groundtruth.MALIOT_GROUND_TRUTH:
            analysis = maliot_analyses[entry.app_id]
            got = analysis.violated_ids()
            if entry.result == "FP":
                # App5: exactly the reflection-induced false warning.
                assert got == {"P.10"}
                assert all(v.via_reflection for v in analysis.violations)
            elif not entry.detectable or entry.environment:
                assert not got, (entry.app_id, got)
            else:
                assert got == set(entry.violations), (entry.app_id, got)

    @pytest.mark.parametrize(
        "group,prop", groundtruth.MALIOT_ENVIRONMENTS, ids=lambda x: str(x)
    )
    def test_environment_detections(self, group, prop):
        env = analyze_environment(load_environment_sources(list(group)))
        individual = set()
        for analysis in env.analyses:
            individual |= analysis.violated_ids()
        env_only = {
            v.property_id
            for v in env.violations
            if len(v.apps) > 1 or v.property_id not in individual
        }
        assert prop in env_only

    def test_sixteen_seventeen_split(self, maliot_analyses):
        """17 of 20 ground-truth violations detected; one false warning."""
        detected = 0
        for entry in groundtruth.MALIOT_GROUND_TRUTH:
            if entry.result == "FP" or not entry.detectable:
                continue
            if entry.environment:
                detected += len(entry.violations)  # verified above per-env
                continue
            got = maliot_analyses[entry.app_id].violated_ids()
            detected += len(got & set(entry.violations))
        assert detected == groundtruth.MALIOT_DETECTED == 17

        false_positives = sum(
            1
            for entry in groundtruth.MALIOT_GROUND_TRUTH
            if entry.result == "FP"
            and maliot_analyses[entry.app_id].violations
        )
        assert false_positives == groundtruth.MALIOT_FALSE_POSITIVES == 1

    def test_app16_17_p14_violated_twice(self):
        env = analyze_environment(load_environment_sources(["App16", "App17"]))
        p14 = [v for v in env.violations if v.property_id == "P.14"]
        assert len(p14) == 2  # camera outlet and alarm outlet

    def test_app10_out_of_scope_marker(self, maliot_analyses):
        assert maliot_analyses["App10"].ir.has_dynamic_preferences

    def test_app11_leak_recorded_as_sink(self, maliot_analyses):
        sinks = maliot_analyses["App11"].ir.sink_calls
        assert any(name == "sendSms" for name, _line in sinks)
