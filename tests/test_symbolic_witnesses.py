"""Symbolic witness decoding: traces must be real explicit-Kripke paths.

The differential suite (tests/test_backends_differential.py) pins verdict
agreement; this suite pins the *witnesses*.  A symbolic counterexample is
decoded from BDD frontiers without ever materializing the product, so a
decoding bug could fabricate states or steps that the real structure does
not contain — and every report, state label, and culprit-app attribution
downstream would silently lie.  For a handful of Table-4/MalIoT
environments:

* every decoded **AG shortest-path** witness must start in an initial
  state of the explicit Kripke structure and follow real edges;
* every decoded **AF lasso** witness (stem + cycle) must follow real
  edges, close its cycle, and stay inside the structure.

Witnesses are compared on ``(state, incoming-props)`` — counterexamples
are not unique, so only *validity* is asserted, never equality with the
explicit checker's pick.
"""

import pytest

from repro.corpus import groundtruth
from repro.corpus.batch import analyze_batch
from repro.mc import ctl
from repro.mc.symbolic import SymbolicModelChecker
from repro.model.encoder import SymbolicUnionModel, encode_union
from repro.model.union import build_union_skeleton
from repro.soteria import analyze_environment

#: A handful of curated environments with known *CTL* violations (the
#: S-only groups fail at model construction and leave no witnesses).
ENVIRONMENTS = [
    pytest.param(tuple(groundtruth.TABLE4_GROUPS[2].apps), id="G.3"),
] + [
    pytest.param(tuple(ids), id="+".join(ids))
    for ids, _prop in groundtruth.MALIOT_ENVIRONMENTS[:2]
]


def _norm(node):
    """Order-insensitive node identity: (state tuple, incoming props)."""
    return (node.state, frozenset(node.incoming))


def _explicit_graph(group):
    analyses = analyze_batch(list(group), jobs=1)
    members = [analyses[app_id] for app_id in group]
    environment = analyze_environment(list(members), backend="explicit")
    kripke = environment.kripke
    nodes = {_norm(state) for state in kripke.states}
    edges = {
        (_norm(src), _norm(dst))
        for src, dsts in kripke.succ.items()
        for dst in dsts
    }
    initial = {_norm(state) for state in kripke.initial}
    return members, nodes, edges, initial


def _assert_path(path, nodes, edges):
    for node in path:
        assert _norm(node) in nodes, f"decoded state not in structure: {node}"
    for src, dst in zip(path, path[1:]):
        assert (_norm(src), _norm(dst)) in edges, (
            f"decoded step is not an explicit edge: {src} -> {dst}"
        )


@pytest.mark.parametrize("group", ENVIRONMENTS)
def test_ag_witnesses_are_explicit_paths(group):
    members, nodes, edges, initial = _explicit_graph(group)
    symbolic = analyze_environment(list(members), backend="symbolic")
    checked = 0
    for results in symbolic.check_results.values():
        for result in results:
            if result.holds or not result.counterexample:
                continue
            path = result.counterexample
            if result.counterexample_loop:
                continue  # lassos are covered below
            _assert_path(path, nodes, edges)
            if len(path) > 1:  # a real AG path, not a generic witness stub
                assert _norm(path[0]) in initial, (
                    "AG witness does not start in an initial state"
                )
                checked += 1
    assert checked, "no AG witnesses found in a known-violating environment"


@pytest.mark.parametrize("encoding", ["monolithic", "partitioned"])
def test_reordering_mid_fixpoint_keeps_frontier_decoding_valid(encoding):
    """Regression: dynamic reordering during the reachability fixpoint
    must not corrupt the BFS frontiers that witness extraction decodes.

    A node-count threshold of 2 forces sifting to run repeatedly while
    the relation is encoded and the frontiers are grown; every decoded
    frontier state and every AG witness walked back over those frontiers
    must still be a real node/path of the explicit Kripke structure.
    """
    group = tuple(groundtruth.MALIOT_ENVIRONMENTS[0][0])  # App12-14
    members, nodes, edges, initial = _explicit_graph(group)
    symbolic = SymbolicUnionModel(
        build_union_skeleton([m.model for m in members]),
        encoding=encoding,
        reorder_threshold=2,
    )
    assert symbolic.bdd.reorder_count >= 1, "no reorder ran — test is vacuous"

    # Every frontier still decodes to real states.
    for ring in symbolic.frontiers:
        node, _labels = symbolic.decode(symbolic.bdd.any_sat(ring))
        assert _norm(node) in nodes, f"frontier decoded a phantom state: {node}"

    # AG witnesses walked back over the (reordered-under) frontiers are
    # real explicit paths from initial states.
    checker = SymbolicModelChecker(symbolic)
    checked = 0
    seen: set[str] = set()
    for fragment in symbolic.fragments.values():
        for prop in fragment.props:
            if not prop.startswith("act:") or prop in seen:
                continue
            seen.add(prop)
            result = checker.check(ctl.AG(ctl.Not(ctl.Prop(prop))))
            if result.holds or not result.counterexample:
                continue
            path = result.counterexample
            _assert_path(path, nodes, edges)
            if len(path) > 1:
                assert _norm(path[0]) in initial
                checked += 1
    assert checked, "no failing AG formula produced a multi-step witness"


@pytest.mark.parametrize("group", ENVIRONMENTS)
def test_af_lasso_witnesses_are_explicit_cycles(group):
    members, nodes, edges, initial = _explicit_graph(group)
    symbolic = encode_union([analysis.model for analysis in members])
    checker = SymbolicModelChecker(symbolic)

    # Catalog properties are AG-shaped, so drive AF directly: for each
    # attribute value, "every path eventually reaches it" is false for
    # most values, producing a lasso that never visits it.
    lassos = 0
    union = symbolic.model
    for attribute in union.attributes:
        for value in attribute.domain:
            prop = ctl.Prop(
                f"attr:{attribute.device}.{attribute.attribute}={value}"
            )
            result = checker.check(ctl.AF(prop))
            if result.holds or not result.counterexample_loop:
                continue
            stem, loop = result.counterexample, result.counterexample_loop
            _assert_path(stem + loop, nodes, edges)
            # The cycle must close back on itself inside the structure.
            assert (_norm(loop[-1]), _norm(loop[0])) in edges
            # The whole lasso avoids the AF target — that is what makes
            # it a counterexample (decoded labels carry the atoms).
            for node in stem + loop:
                assert prop.name not in checker.labels.get(node, frozenset())
            lassos += 1
            if lassos >= 3:
                return
    assert lassos, "no failing AF formula produced a lasso witness"
