"""The BDD-kernel knob end to end: recording, forcing, cache isolation.

The kernel is an analysis knob like backend/encoding: it selects which
BDD manager the symbolic checker runs on (the array-backed fast core by
default, the reference dict-of-nodes manager as the differential
oracle).  These tests pin that the knob is recorded on every result,
that forcing it is honored at each entry point (pipeline, sweep,
service), and — the part that silently rots — that *no cache layer ever
serves a cross-kernel artifact*: check-stage artifacts, sweep entries,
and service job records are all keyed on the kernel.
"""

import pytest

from repro.corpus.batch import analyze_batch
from repro.corpus.sweep import sweep_environments
from repro.pipeline.runner import Pipeline
from repro.pipeline.store import ArtifactStore
from repro.soteria import analyze_app, analyze_environment

GROUP = ("App12", "App13", "App14")  # MalIoT smoke/lock chain


def _members():
    analyses = analyze_batch(list(GROUP), jobs=1)
    return [analyses[a] for a in GROUP]


class TestKernelRecordedAndForced:
    def test_explicit_runs_have_no_kernel(self):
        explicit = analyze_environment(_members(), backend="explicit")
        assert explicit.kernel is None
        assert explicit.kernel_stats is None

    def test_auto_resolves_to_fast_and_is_recorded(self):
        run = analyze_environment(_members(), backend="symbolic")
        assert run.kernel == "fast"
        assert run.kernel_stats is not None
        assert run.kernel_stats["kernel"] == "fast"
        assert run.kernel_stats["peak_nodes"] > 0

    def test_forced_kernels_agree_with_each_other(self):
        runs = {
            kernel: analyze_environment(
                _members(), backend="symbolic", kernel=kernel
            )
            for kernel in ("reference", "fast")
        }
        assert runs["reference"].kernel == "reference"
        assert runs["fast"].kernel == "fast"
        assert (
            runs["reference"].violated_ids() == runs["fast"].violated_ids()
        )

    def test_unknown_kernel_rejected_fast(self):
        with pytest.raises(ValueError):
            analyze_environment(_members(), kernel="cudd2")
        with pytest.raises(ValueError):
            analyze_app("definition(name: \"X\")", kernel="zdd")


class TestCheckStageKeyedOnKernel:
    def test_kernel_knob_misses_only_the_check_stage(self):
        # Switching kernels on an already-analyzed symbolic app must
        # re-run the check (different kernel = different artifact key)
        # while replaying parse/ir/model — and must NEVER serve the
        # other kernel's cached check artifact.
        store = ArtifactStore()
        pipeline = Pipeline(store)
        members = [m.app for m in _members()]
        fast = pipeline.environment_analysis(
            list(members), backend="symbolic"
        )
        before = store.counters()
        reference = pipeline.environment_analysis(
            list(members), backend="symbolic", kernel="reference"
        )
        after = store.counters()
        assert fast.kernel == "fast"
        assert reference.kernel == "reference"
        assert reference.violated_ids() == fast.violated_ids()
        assert after["union"]["misses"] == before["union"]["misses"]
        # One new check artifact for the union plus one per member (the
        # forced symbolic backend cascades to member analyses, which are
        # kernel-keyed too).
        assert (
            after["check"]["misses"]
            == before["check"]["misses"] + 1 + len(members)
        )

    def test_same_kernel_rerun_is_served_from_cache(self):
        store = ArtifactStore()
        pipeline = Pipeline(store)
        members = [m.app for m in _members()]
        pipeline.environment_analysis(
            list(members), backend="symbolic", kernel="reference"
        )
        before = store.counters()
        again = pipeline.environment_analysis(
            list(members), backend="symbolic", kernel="reference"
        )
        after = store.counters()
        assert again.kernel == "reference"
        assert after["check"]["misses"] == before["check"]["misses"]

    def test_explicit_checks_share_one_key_across_kernel_knobs(self):
        # The kernel only matters where a BDD manager actually runs: an
        # explicit check requested with a different kernel knob is the
        # same artifact (the knob is recorded as "-" in the key).
        store = ArtifactStore()
        pipeline = Pipeline(store)
        members = [m.app for m in _members()]
        pipeline.environment_analysis(list(members), backend="explicit")
        before = store.counters()
        pipeline.environment_analysis(
            list(members), backend="explicit", kernel="reference"
        )
        after = store.counters()
        assert after["check"]["misses"] == before["check"]["misses"]


class TestSweepCacheKeyedOnKernel:
    def test_forced_kernel_run_never_served_the_auto_result(self, tmp_path):
        first = sweep_environments(
            [GROUP], jobs=1, cache_dir=tmp_path, backend="symbolic"
        )
        assert not first[0].cached
        assert first[0].environment.kernel == "fast"   # auto -> fast
        warm = sweep_environments(
            [GROUP], jobs=1, cache_dir=tmp_path, backend="symbolic"
        )
        assert warm[0].cached
        forced = sweep_environments(
            [GROUP], jobs=1, cache_dir=tmp_path,
            backend="symbolic", kernel="reference",
        )
        assert not forced[0].cached
        assert forced[0].environment.kernel == "reference"
        assert forced[0].violated_ids() == warm[0].violated_ids()
        forced_warm = sweep_environments(
            [GROUP], jobs=1, cache_dir=tmp_path,
            backend="symbolic", kernel="reference",
        )
        assert forced_warm[0].cached


class TestServiceKernelKnob:
    GOOD = '''
definition(name: "Tiny")
preferences { section("s") { input "sw", "capability.switch" } }
def installed() { subscribe(sw, "switch.on", h) }
def h(evt) { }
'''

    def test_submission_key_distinguishes_kernels(self):
        from repro.service.jobs import submission_key

        entries = [("Tiny", "digest0")]
        auto = submission_key(entries)
        reference = submission_key(entries, kernel="reference")
        fast = submission_key(entries, kernel="fast")
        assert len({auto, reference, fast}) == 3

    def test_submission_carries_and_resolves_the_kernel(self):
        from repro.service.app import SoteriaService, _parse_submission

        entries, backend, encoding, kernel = _parse_submission(
            {"source": self.GOOD, "backend": "symbolic", "kernel": "reference"}
        )
        assert kernel == "reference"
        service = SoteriaService(jobs=1)
        try:
            record, created = service.submit(
                entries, backend, encoding, kernel
            )
            assert created
            assert record.kernel == "reference"
            final = service.wait(record.id, timeout=120)
            assert final.status == "done"
            assert final.resolved_kernel == "reference"
            assert final.kernel_stats["kernel"] == "reference"
            # Same sources, different kernel: a NEW job, never the
            # other kernel's record.
            other, other_created = service.submit(
                entries, backend, encoding, "fast"
            )
            assert other_created
            assert other.id != record.id
            # /v1/stats surfaces the per-kernel aggregates.
            stats = service.stats()
            assert "reference" in stats["kernels"]
            assert stats["kernels"]["reference"]["runs"] >= 1
        finally:
            service.shutdown()

    def test_bogus_submission_kernel_rejected(self):
        from repro.service.app import SubmissionError, _parse_submission

        with pytest.raises(SubmissionError):
            _parse_submission({"source": self.GOOD, "kernel": "zdd"})


class TestFuzzKernelAxis:
    def test_campaign_cross_checks_both_kernels(self):
        from repro.corpus.fuzz import FuzzConfig, run_fuzz

        report = run_fuzz(
            seed=17, count=3, jobs=1, config=FuzzConfig(kernel="both")
        )
        assert report.config.kernel == "both"
        assert report.ok, [r.detail for r in report.failures()]

    def test_reproducer_records_the_kernel(self, tmp_path):
        import json

        from repro.corpus.fuzz import CaseResult, FuzzConfig, write_reproducer

        result = CaseResult(
            index=0, kind="app", app_ids=("GenX",), sources=("src",),
            injected=(), detected=(), status="mismatch", detail="d",
        )
        directory = write_reproducer(
            result, FuzzConfig(kernel="both"), tmp_path
        )
        meta = json.loads((directory / "meta.json").read_text())
        assert meta["config"]["kernel"] == "both"
