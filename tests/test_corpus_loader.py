"""Loader dispatch/caching and the batch analysis driver."""

import pytest

from repro.corpus import batch, groundtruth
from repro.corpus.loader import (
    _id_from_filename,
    _sources,
    app_ids,
    load_app,
    load_source,
    register_app,
    registered_ids,
    scoped_registration,
    unregister_app,
)


class TestIdFromFilename:
    def test_zero_padding_stripped(self):
        assert _id_from_filename("official", "O01_light_follows_me.groovy") == "O1"
        assert _id_from_filename("maliot", "App05_x.groovy") == "App5"

    def test_unpadded_ids_pass_through(self):
        assert _id_from_filename("thirdparty", "TP12_lights_out.groovy") == "TP12"

    def test_multi_underscore_stem(self):
        name = "App05_two_part_name_with_many_words.groovy"
        assert _id_from_filename("maliot", name) == "App5"

    def test_no_underscore_stem(self):
        assert _id_from_filename("official", "O07.groovy") == "O7"

    def test_non_numeric_prefix_returned_verbatim(self):
        assert _id_from_filename("official", "Readme_notes.groovy") == "Readme"

    def test_trailing_letters_not_treated_as_id(self):
        # "O1b" does not match <alpha><digits>; the prefix comes back as-is.
        assert _id_from_filename("official", "O1b_weird.groovy") == "O1b"


class TestLoadSourceDispatch:
    def test_prefixes_route_to_their_dataset(self):
        assert 'name: "Light Follows Me"' in load_source("O1")
        assert 'name: "Lights Out On Open"' in load_source("TP12")
        assert "GROUND-TRUTH" in load_source("App5")

    @pytest.mark.parametrize(
        "bogus", ["X1", "O99", "TP999", "App0", "O", "TP", "App", "1", "o1", ""]
    )
    def test_unknown_ids_raise_uniform_keyerror(self, bogus):
        with pytest.raises(KeyError):
            load_source(bogus)

    def test_app_prefix_is_not_official(self):
        # "App5" must not be misread as an official app named "App5".
        assert "App5" not in app_ids("official")
        assert "App5" in app_ids("maliot")


class TestRegisteredSyntheticApps:
    SOURCE = (
        'definition(name: "Synthetic")\n'
        'preferences { section("s") { input "sw", "capability.switch" } }\n'
        'def installed() { subscribe(sw, "switch.on", h) }\n'
        "def h(evt) { }\n"
    )

    def test_registered_source_resolves_like_corpus(self):
        register_app("GenLoaderT1", self.SOURCE)
        assert load_source("GenLoaderT1") == self.SOURCE
        assert load_app("GenLoaderT1").name == "GenLoaderT1"
        assert "GenLoaderT1" in registered_ids()

    def test_reregistering_identical_source_is_noop(self):
        register_app("GenLoaderT2", self.SOURCE)
        register_app("GenLoaderT2", self.SOURCE)
        assert registered_ids().count("GenLoaderT2") == 1

    def test_conflicting_source_rejected(self):
        register_app("GenLoaderT3", self.SOURCE)
        with pytest.raises(ValueError, match="already bound"):
            register_app("GenLoaderT3", self.SOURCE + "\n// edited\n")

    def test_corpus_ids_cannot_be_shadowed(self):
        with pytest.raises(ValueError, match="already bound"):
            register_app("O1", self.SOURCE)
        # Registering a corpus id with its own exact source is harmless.
        register_app("O1", load_source("O1"))
        assert "O1" not in registered_ids()

    def test_unregister_frees_the_id(self):
        register_app("GenLoaderT4", self.SOURCE)
        load_app("GenLoaderT4")  # populate the parse cache too
        assert unregister_app("GenLoaderT4") is True
        assert "GenLoaderT4" not in registered_ids()
        assert unregister_app("GenLoaderT4") is False  # idempotent
        # The freed id may legally re-bind to a *different* source.
        register_app("GenLoaderT4", self.SOURCE + "\n// v2\n")
        assert load_source("GenLoaderT4").endswith("// v2\n")

    def test_scoped_registration_restores_registry(self):
        register_app("GenLoaderT5", self.SOURCE)
        before = registered_ids()
        with pytest.raises(RuntimeError, match="boom"):
            with scoped_registration():
                register_app("GenLoaderScoped1", self.SOURCE)
                register_app("GenLoaderT5", self.SOURCE)  # pre-existing: no-op
                assert "GenLoaderScoped1" in registered_ids()
                raise RuntimeError("boom")
        # Inner ids are gone (even on exception); outer ones survive.
        assert registered_ids() == before
        assert "GenLoaderT5" in registered_ids()


class TestStrayFilesSkipped:
    def test_non_corpus_files_ignored(self, monkeypatch, tmp_path):
        import repro.corpus.loader as loader

        dataset_dir = tmp_path / "official"
        dataset_dir.mkdir()
        (dataset_dir / "O01_real.groovy").write_text('definition(name: "X")')
        (dataset_dir / "Notes_helper.groovy").write_text("// scratch")
        (dataset_dir / "TP01_wrong_prefix.groovy").write_text("// misplaced")
        (dataset_dir / "readme.txt").write_text("not groovy")
        monkeypatch.setattr(loader, "_apps_dir", lambda dataset: dataset_dir)
        _sources.cache_clear()
        try:
            # Only the well-formed O-prefixed app survives; strays cannot
            # be resolved by load_source, so they must not be listed.
            assert loader.app_ids("official") == ["O1"]
        finally:
            monkeypatch.undo()
            _sources.cache_clear()


class TestMissingAppsDirectory:
    def test_clear_error_names_dataset_and_path(self, monkeypatch, tmp_path):
        import repro.corpus.loader as loader

        missing = tmp_path / "nowhere"
        monkeypatch.setattr(loader, "_apps_dir", lambda dataset: missing)
        _sources.cache_clear()
        try:
            with pytest.raises(FileNotFoundError) as excinfo:
                loader.load_corpus("official")
            message = str(excinfo.value)
            assert "official" in message
            assert str(missing) in message
        finally:
            monkeypatch.undo()
            _sources.cache_clear()


class TestLoadAppCache:
    def test_same_app_parsed_once(self):
        assert load_app("O1") is load_app("O1")

    def test_distinct_apps_distinct_objects(self):
        assert load_app("O1") is not load_app("O2")


class TestGroundTruthIdsResolve:
    def test_table3_ids(self):
        for app_id in groundtruth.TABLE3_INDIVIDUAL:
            assert load_app(app_id).name == app_id

    def test_table4_group_ids(self):
        for group in groundtruth.TABLE4_GROUPS:
            for app_id in group.apps:
                assert load_app(app_id).name == app_id

    def test_maliot_ids_and_environments(self):
        for entry in groundtruth.MALIOT_GROUND_TRUTH:
            assert load_app(entry.app_id).name == entry.app_id
            for env_id in entry.environment:
                assert load_app(env_id).name == env_id
        for group, _prop in groundtruth.MALIOT_ENVIRONMENTS:
            for app_id in group:
                assert load_app(app_id).name == app_id


class TestBatchDriver:
    def test_batch_matches_individual_analysis(self):
        from repro import analyze_app

        results = batch.analyze_batch(["O1", "TP29"], jobs=1)
        assert set(results) == {"O1", "TP29"}
        solo = analyze_app(load_app("TP29"))
        assert results["TP29"].violated_ids() == solo.violated_ids()
        assert results["TP29"].model.size() == solo.model.size()

    def test_cache_returns_same_object(self):
        first = batch.analyze_batch(["O2"], jobs=1)["O2"]
        second = batch.analyze_batch(["O2"], jobs=1)["O2"]
        assert first is second
        assert batch.cache_info()["entries"] >= 1

    def test_duplicate_ids_deduplicated_in_order(self):
        results = batch.analyze_batch(["O1", "O1", "O2"], jobs=1)
        assert list(results) == ["O1", "O2"]

    def test_worker_pool_sweep_matches_ground_truth(self):
        results = batch.analyze_corpus("maliot", jobs=2)
        assert len(results) == 17
        assert results["App1"].violated_ids() == {"P.2"}
        assert results["App5"].violated_ids() == {"P.10"}
        assert not results["App10"].violations

    def test_full_corpus_counts(self):
        results = batch.analyze_corpus("all", jobs=1)
        assert len(results) == 82
        flagged = {a for a, r in results.items() if r.violations}
        # Table 3's nine + the eight MalIoT apps flagged individually.
        assert flagged == set(groundtruth.TABLE3_INDIVIDUAL) | {
            "App1", "App2", "App3", "App4", "App5", "App6", "App7", "App8"
        }
