"""Property abstraction of numeric attributes."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis.abstraction import (
    AbstractRegion,
    build_numeric_domain,
    collect_read_cutpoints,
)
from repro.analysis.predicates import Atom
from repro.analysis.values import Const, DeviceRead, UserInput
from repro.platform.capabilities import Attribute, AttributeKind

TEMP = Attribute("heatingSetpoint", AttributeKind.NUMERIC, low=50, high=95)
POWER = Attribute("power", AttributeKind.NUMERIC, low=0, high=10000)
BATTERY = Attribute("battery", AttributeKind.NUMERIC, low=0, high=100)


def domain(written=(), read=(), users=(), written_users=()):
    return build_numeric_domain(
        "dev", TEMP, set(written), set(read), set(users), set(written_users)
    )


class TestDomainShapes:
    def test_no_information_single_region(self):
        d = domain()
        assert d.size() == 1
        assert d.regions[0].kind == "any"

    def test_written_constant_paper_example(self):
        # Paper: temp set to 68 -> "a state when the temperature is equal to
        # 68F and a state when it is not 68F"; the interval partition keeps
        # the point exact: <68, =68, >68.
        d = domain(written={68})
        labels = d.labels()
        assert "heatingSetpoint=68" in labels
        assert d.size() == 3

    def test_read_cutpoints_partition(self):
        d = build_numeric_domain("m", POWER, set(), {5.0, 50.0}, set(), set())
        assert d.size() == 5  # <5, =5, 5..50, =50, >50

    def test_user_threshold_two_regions(self):
        d = build_numeric_domain("b", BATTERY, set(), set(), {"thrshld"}, set())
        assert d.size() == 2
        assert {r.user_side for r in d.regions} == {"below", "at-or-above"}

    def test_written_user_input_two_regions(self):
        d = domain(written_users={"goal"})
        assert {r.user_side for r in d.regions} == {"equal", "not-equal"}

    def test_raw_size_recorded(self):
        d = domain(written={68})
        assert d.raw_size == TEMP.domain_size() == 46

    def test_reduction_is_order_of_magnitude(self):
        # Fig. 11 top: reduction should be dramatic for realistic domains.
        d = build_numeric_domain("b", BATTERY, set(), {10.0}, set(), set())
        assert d.raw_size / d.size() > 10


class TestRegionDecide:
    def test_point_region_decides_exactly(self):
        d = domain(written={68})
        point = d.region("heatingSetpoint=68")
        assert point.decide("==", Const(68)) is True
        assert point.decide(">", Const(50)) is True
        assert point.decide("<", Const(68)) is False

    def test_interval_region_decides_boundaries(self):
        d = build_numeric_domain("m", POWER, set(), {5.0, 50.0}, set(), set())
        low = d.regions[0]       # power < 5
        mid = d.regions[2]       # 5 < power < 50
        high = d.regions[4]      # power > 50
        assert low.decide("<", Const(5)) is True
        assert low.decide(">", Const(50)) is False
        assert mid.decide(">", Const(50)) is False
        assert mid.decide(">", Const(5)) is True
        assert high.decide(">", Const(50)) is True
        assert high.decide("<", Const(5)) is False

    def test_interval_mixed_is_none(self):
        d = build_numeric_domain("m", POWER, set(), {50.0}, set(), set())
        below = d.regions[0]
        assert below.decide(">", Const(10)) is None  # some yes, some no

    def test_symbolic_below_region(self):
        d = build_numeric_domain("b", BATTERY, set(), set(), {"t"}, set())
        below, above = d.regions
        assert below.decide("<", UserInput("t")) is True
        assert below.decide(">=", UserInput("t")) is False
        assert above.decide(">=", UserInput("t")) is True
        assert above.decide("<", UserInput("t")) is False

    def test_symbolic_wrong_handle_is_none(self):
        d = build_numeric_domain("b", BATTERY, set(), set(), {"t"}, set())
        assert d.regions[0].decide("<", UserInput("other")) is None

    def test_equal_region(self):
        d = domain(written_users={"goal"})
        eq = d.region("heatingSetpoint=goal")
        assert eq.decide("==", UserInput("goal")) is True
        assert eq.decide("!=", UserInput("goal")) is False

    def test_unknown_region_lookup_raises(self):
        with pytest.raises(KeyError):
            domain().region("nope")


class TestCutpointCollection:
    def test_collects_constants(self):
        read = DeviceRead("m", "power")
        atoms = [
            Atom(lhs=read, op=">", rhs=Const(50)),
            Atom(lhs=Const(5), op=">", rhs=read),
        ]
        consts, users = collect_read_cutpoints(atoms, "m", "power")
        assert consts == {50.0, 5.0}
        assert not users

    def test_collects_user_handles(self):
        read = DeviceRead("b", "battery")
        atoms = [Atom(lhs=read, op="<", rhs=UserInput("thrshld"))]
        consts, users = collect_read_cutpoints(atoms, "b", "battery")
        assert users == {"thrshld"}

    def test_other_devices_ignored(self):
        read = DeviceRead("other", "power")
        atoms = [Atom(lhs=read, op=">", rhs=Const(50))]
        consts, users = collect_read_cutpoints(atoms, "m", "power")
        assert not consts and not users

    def test_booleans_not_cutpoints(self):
        read = DeviceRead("m", "power")
        atoms = [Atom(lhs=read, op="==", rhs=Const(True))]
        consts, _users = collect_read_cutpoints(atoms, "m", "power")
        assert not consts


# ----------------------------------------------------------------------
# Property-based: the interval partition must cover the real line without
# overlap, and decide() must agree with concrete evaluation.
# ----------------------------------------------------------------------
@given(
    st.sets(st.integers(min_value=0, max_value=100), min_size=1, max_size=4),
    st.sets(st.integers(min_value=0, max_value=100), max_size=3),
)
def test_partition_covers_and_is_disjoint(read, written):
    d = build_numeric_domain(
        "m", POWER, {float(w) for w in written}, {float(r) for r in read},
        set(), set(),
    )
    samples = [x / 2.0 for x in range(-4, 210)]
    for sample in samples:
        containing = [r for r in d.regions if _contains(r, sample)]
        assert len(containing) == 1, (sample, [r.label for r in containing])


def _contains(region: AbstractRegion, value: float) -> bool:
    if region.kind == "point":
        return value == region.point
    if region.kind == "interval":
        above = value > region.lo or (value == region.lo and not region.lo_open)
        below = value < region.hi or (value == region.hi and not region.hi_open)
        return above and below
    return True


@given(
    st.sets(st.integers(min_value=0, max_value=20), min_size=1, max_size=3),
    st.integers(min_value=0, max_value=20),
    st.sampled_from(["<", "<=", ">", ">=", "==", "!="]),
)
def test_decide_agrees_with_concrete_members(cutpoints, const, op):
    d = build_numeric_domain(
        "m", POWER, set(), {float(c) for c in cutpoints}, set(), set()
    )
    for region in d.regions:
        verdict = region.decide(op, Const(const))
        if verdict is None:
            continue
        members = [x / 2.0 for x in range(-4, 50) if _contains(region, x / 2.0)]
        for member in members:
            concrete = {
                "<": member < const,
                "<=": member <= const,
                ">": member > const,
                ">=": member >= const,
                "==": member == const,
                "!=": member != const,
            }[op]
            assert concrete == verdict, (region.label, member, op, const)
