"""Service hardening: leaks, event-driven waits, backpressure, tenants,
slow-loris, fleet single-flight, and job TTL/GC.

The regression anchors for PR 10's production bugs:

- ``SoteriaService._futures`` used to retain one settled Future per job
  forever (``_run_job`` pruned only ``_sources``) — the registries must
  be EMPTY after every job settles.
- ``?wait=`` used to park a handler thread on ``future.result()`` per
  waiter — waits are now event-driven and bounded by a waiter-slot
  pool, so a 64-concurrent-waiter burst on a 2-worker service must
  never park a thread per waiter.
- ``rfile.read(Content-Length)`` had no socket timeout — a client that
  under-sends its declared body parked a handler thread forever.
- Nothing bounded admission — saturation now answers 429 with a
  ``Retry-After`` hint, per service and per tenant.
"""

import http.client
import inspect
import json
import socket
import threading
import time
import urllib.error
import urllib.request
from types import SimpleNamespace

import pytest

import repro.service.app as app_mod
from repro.service.app import (
    FleetBusyError,
    QueueFullError,
    SoteriaService,
    SubmissionError,
    build_server,
    validate_tenant,
)
from repro.service.jobs import JobRecord, JobStore, job_id_for, submission_key
from repro.service.policy import APPROVED

GOOD = '''
definition(name: "Good")
preferences { section("s") {
    input "ws", "capability.waterSensor"
    input "vd", "capability.valve"
} }
def installed() { subscribe(ws, "water.wet", h) }
def h(evt) { vd.close() }
'''


def _done_fields() -> dict:
    """A minimal settled-job field dict (what _run_analysis returns)."""
    return {
        "status": "done",
        "verdict": APPROVED,
        "flagged": False,
        "reason": None,
        "violations": [],
        "checked_properties": [],
        "skipped_properties": [],
        "resolved_backend": "explicit",
        "resolved_encoding": "-",
        "resolved_kernel": "-",
        "kernel_stats": None,
        "state_estimate": 1,
    }


@pytest.fixture()
def gated_analysis(monkeypatch):
    """Replace the analysis body with one that blocks on a gate event.

    Jobs finish (instantly) only once the gate is set — the test's way
    to hold a known number of jobs in flight deterministically.
    """
    gate = threading.Event()

    def fake_run_analysis(_pipeline, named, _kind, *_knobs):
        if not gate.wait(timeout=30):
            raise RuntimeError("test gate never opened")
        return _done_fields()

    monkeypatch.setattr(app_mod, "_run_analysis", fake_run_analysis)
    return gate


@pytest.fixture()
def instant_analysis(monkeypatch):
    """Replace the analysis body with an instant no-op success."""
    monkeypatch.setattr(
        app_mod, "_run_analysis", lambda *_args: _done_fields()
    )


def _submit_n(service, count, tenant="default", prefix="App"):
    """Submit ``count`` distinct one-source jobs; the records."""
    records = []
    for index in range(count):
        record, created = service.submit(
            [(f"{prefix}{index}", f"// {prefix} {index}\n" + GOOD)],
            tenant=tenant,
        )
        assert created
        records.append(record)
    return records


def _url(server, path):
    host, port = server.server_address[:2]
    return f"http://{host}:{port}{path}"


def _request(server, path, body=None, headers=None, timeout=60):
    data = None if body is None else json.dumps(body).encode("utf-8")
    request = urllib.request.Request(
        _url(server, path),
        data=data,
        headers={"Content-Type": "application/json"} | (headers or {}),
        method="POST" if data is not None else "GET",
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, dict(response.headers), json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), json.loads(error.read())


# ----------------------------------------------------------------------
# The _futures leak (tentpole bug 1)
# ----------------------------------------------------------------------
class TestSettleTimePruning:
    def test_registries_empty_after_all_jobs_settle(self, instant_analysis):
        service = SoteriaService(jobs=2)
        try:
            records = _submit_n(service, 8)
            for record in records:
                final = service.wait(record.id, timeout=30)
                assert final.status == "done"
            # THE leak regression: a settled job must leave nothing
            # behind — no Future, no Event, no sources, no quota count.
            assert service._futures == {}
            assert service._events == {}
            assert service._sources == {}
            assert service._tenant_inflight == {}
        finally:
            service.shutdown()

    def test_failed_jobs_are_pruned_too(self, monkeypatch):
        def exploding(*_args):
            raise RuntimeError("boom")

        monkeypatch.setattr(app_mod, "_run_analysis", exploding)
        service = SoteriaService(jobs=1)
        try:
            record, _ = service.submit([("A", GOOD)])
            final = service.wait(record.id, timeout=30)
            assert final.status == "failed"
            assert service._futures == {}
            assert service._events == {}
        finally:
            service.shutdown()

    def test_wait_on_settled_job_returns_record_without_futures(
        self, instant_analysis
    ):
        service = SoteriaService(jobs=1)
        try:
            record, _ = service.submit([("A", GOOD)])
            assert service.wait(record.id, timeout=30).status == "done"
            assert service._futures == {}
            # A second wait answers from the store alone.
            again = service.wait(record.id, timeout=30)
            assert again is not None
            assert again.status == "done"
            assert again.verdict == APPROVED
            assert service.wait("job-nope") is None
        finally:
            service.shutdown()


# ----------------------------------------------------------------------
# Event-driven waits + bounded waiter slots (tentpole bug 2)
# ----------------------------------------------------------------------
class TestEventDrivenWait:
    def test_wait_timeout_returns_unsettled_record(self, gated_analysis):
        service = SoteriaService(jobs=1)
        try:
            record, _ = service.submit([("A", GOOD)])
            snapshot = service.wait(record.id, timeout=0.05)
            assert snapshot.status in ("queued", "running")
            gated_analysis.set()
            assert service.wait(record.id, timeout=30).status == "done"
        finally:
            service.shutdown()

    def test_waiter_wakes_on_settle(self, gated_analysis):
        service = SoteriaService(jobs=1)
        try:
            record, _ = service.submit([("A", GOOD)])
            result = {}

            def waiter():
                result["record"] = service.wait(record.id, timeout=30)

            thread = threading.Thread(target=waiter)
            thread.start()
            time.sleep(0.1)
            assert thread.is_alive()  # parked on the event
            gated_analysis.set()
            thread.join(timeout=10)
            assert not thread.is_alive()
            assert result["record"].status == "done"
        finally:
            service.shutdown()

    def test_excess_waiters_degrade_instead_of_parking(self, gated_analysis):
        service = SoteriaService(jobs=1, max_waiters=1)
        try:
            record, _ = service.submit([("A", GOOD)])
            parked = threading.Thread(
                target=service.wait, args=(record.id,), kwargs={"timeout": 30}
            )
            parked.start()
            deadline = time.time() + 5
            while service._wait_stats["active"] < 1:
                assert time.time() < deadline, "first waiter never parked"
                time.sleep(0.01)
            # Slots exhausted: this wait must answer IMMEDIATELY with a
            # snapshot instead of parking a second thread.
            start = time.time()
            snapshot = service.wait(record.id, timeout=30)
            assert time.time() - start < 1.0
            assert snapshot.status in ("queued", "running")
            assert service._wait_stats["degraded"] >= 1
            assert service._wait_stats["peak"] <= 1
            gated_analysis.set()
            parked.join(timeout=10)
        finally:
            service.shutdown()

    def test_shutdown_wakes_parked_waiters(self, gated_analysis):
        service = SoteriaService(jobs=1)
        record, _ = service.submit([("A", GOOD)])
        released = threading.Event()

        def waiter():
            service.wait(record.id, timeout=30)
            released.set()

        thread = threading.Thread(target=waiter)
        thread.start()
        time.sleep(0.1)
        service.shutdown()
        assert released.wait(timeout=10), "shutdown stranded a waiter"
        thread.join(timeout=5)
        gated_analysis.set()  # let the runner thread exit cleanly


# ----------------------------------------------------------------------
# Bounded admission: 429 + Retry-After (tentpole bug 4)
# ----------------------------------------------------------------------
class TestBackpressure:
    def test_saturation_raises_queue_full(self, gated_analysis):
        service = SoteriaService(jobs=1, max_pending=2)
        try:
            _submit_n(service, 2)
            with pytest.raises(QueueFullError) as info:
                service.submit([("Overflow", "// overflow\n" + GOOD)])
            assert info.value.scope == "service"
            assert info.value.retry_after >= 1
            # Draining reopens admission.
            gated_analysis.set()
            for record in list(service._events):
                service.wait(record, timeout=30)
            record, created = service.submit(
                [("Overflow", "// overflow\n" + GOOD)]
            )
            assert created
            assert service.wait(record.id, timeout=30).status == "done"
        finally:
            service.shutdown()

    def test_resubmission_of_settled_job_served_even_when_full(
        self, instant_analysis
    ):
        service = SoteriaService(jobs=1, max_pending=1)
        try:
            done, _ = service.submit([("Done", GOOD)])
            assert service.wait(done.id, timeout=30).status == "done"
            # Now saturate with a job that the (instant) analysis will
            # finish — hold admission full artificially instead.
            with service._lock:
                service._events["job-held"] = threading.Event()
            with pytest.raises(QueueFullError):
                service.submit([("New", "// new\n" + GOOD)])
            # ... but the settled job's resubmission schedules nothing,
            # so it must be served.
            again, created = service.submit([("Done", GOOD)])
            assert not created
            assert again.status == "done"
            with service._lock:
                service._events.pop("job-held")
        finally:
            service.shutdown()

    def test_http_429_with_retry_after_header(self, gated_analysis, tmp_path):
        server = build_server(
            host="127.0.0.1", port=0, pool="thread", jobs=1, max_pending=1,
            state_dir=tmp_path / "state",
        )
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            status, _headers, first = _request(
                server, "/v1/submissions", {"source": GOOD, "name": "A"}
            )
            assert status == 201
            status, headers, body = _request(
                server, "/v1/submissions",
                {"source": "// b\n" + GOOD, "name": "B"},
            )
            assert status == 429
            assert headers.get("Retry-After", "").isdigit()
            assert body["scope"] == "service"
            assert body["retry_after"] >= 1
            # The rejection is visible on /v1/stats.
            _s, _h, stats = _request(server, "/v1/stats")
            assert stats["service"]["rejected"]["service"] >= 1
            assert stats["service"]["pending"] == 1
            gated_analysis.set()
        finally:
            server.service.shutdown()
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)


# ----------------------------------------------------------------------
# Per-tenant namespacing + quotas
# ----------------------------------------------------------------------
class TestTenants:
    def test_tenant_validation(self):
        assert validate_tenant("acme-store.eu_1") == "acme-store.eu_1"
        for bad in ("", " ", "a b", "a/b", "-lead", "x" * 65, "\n"):
            with pytest.raises(SubmissionError):
                validate_tenant(bad)

    def test_tenant_namespaces_the_job_space(self, instant_analysis):
        service = SoteriaService(jobs=2)
        try:
            alpha, created_a = service.submit([("A", GOOD)], tenant="alpha")
            beta, created_b = service.submit([("A", GOOD)], tenant="beta")
            assert created_a and created_b
            assert alpha.id != beta.id          # same sources, two jobs
            assert alpha.tenant == "alpha"
            assert beta.tenant == "beta"
            # ... and each tenant's resubmission dedupes within itself.
            again, created = service.submit([("A", GOOD)], tenant="alpha")
            assert not created
            assert again.id == alpha.id
        finally:
            service.shutdown()

    def test_tenant_quota_is_per_tenant(self, gated_analysis):
        service = SoteriaService(jobs=1, max_pending=10, tenant_quota=1)
        try:
            service.submit([("A0", GOOD)], tenant="alpha")
            with pytest.raises(QueueFullError) as info:
                service.submit(
                    [("A1", "// a1\n" + GOOD)], tenant="alpha"
                )
            assert info.value.scope == "tenant:alpha"
            # A greedy tenant saturates itself, not the service.
            record, created = service.submit(
                [("B0", "// b0\n" + GOOD)], tenant="beta"
            )
            assert created
            gated_analysis.set()
        finally:
            service.shutdown()

    def test_stats_break_down_jobs_per_tenant(self, instant_analysis):
        service = SoteriaService(jobs=2)
        try:
            for record in (
                _submit_n(service, 2, tenant="alpha", prefix="A")
                + _submit_n(service, 1, tenant="beta", prefix="B")
            ):
                service.wait(record.id, timeout=30)
            tenants = service.stats()["jobs"]["tenants"]
            assert tenants["alpha"]["done"] == 2
            assert tenants["alpha"]["total"] == 2
            assert tenants["beta"]["done"] == 1
        finally:
            service.shutdown()

    def test_http_tenant_header(self, instant_analysis, tmp_path):
        server = build_server(
            host="127.0.0.1", port=0, pool="thread", jobs=1,
            state_dir=tmp_path / "state",
        )
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            status, _h, job = _request(
                server, "/v1/submissions?wait=30",
                {"source": GOOD, "name": "A"},
                headers={"X-Soteria-Tenant": "acme"},
            )
            assert status == 201
            assert job["tenant"] == "acme"
            # A malformed tenant header is a 400, not a crash.
            status, _h, body = _request(
                server, "/v1/submissions", {"source": GOOD, "name": "A"},
                headers={"X-Soteria-Tenant": "not a tenant!"},
            )
            assert status == 400
            assert "tenant" in body["error"]
            _s, _h, stats = _request(server, "/v1/stats")
            assert stats["jobs"]["tenants"]["acme"]["done"] == 1
        finally:
            server.service.shutdown()
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)


# ----------------------------------------------------------------------
# Slow-loris body reads (tentpole bug 3)
# ----------------------------------------------------------------------
class TestSlowLoris:
    def test_stalled_body_read_is_dropped_not_parked(self, tmp_path):
        server = build_server(
            host="127.0.0.1", port=0, pool="thread", jobs=1,
            state_dir=tmp_path / "state", handler_timeout=1.0,
        )
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        try:
            baseline = threading.active_count()
            sock = socket.create_connection((host, port), timeout=20)
            try:
                sock.sendall(
                    b"POST /v1/submissions HTTP/1.1\r\n"
                    b"Host: test\r\n"
                    b"Content-Type: application/json\r\n"
                    b"Content-Length: 1000\r\n"
                    b"\r\n"
                    b'{"partial'  # 9 of the declared 1000 bytes, then stall
                )
                start = time.time()
                response = sock.recv(65536)  # 408 (or bare close) — but soon
                elapsed = time.time() - start
                assert elapsed < 15, "stalled read parked the handler"
                assert response == b"" or b"408" in response.split(b"\r\n")[0]
            finally:
                sock.close()
            # The handler thread is free again and the server healthy.
            deadline = time.time() + 10
            while threading.active_count() > baseline and time.time() < deadline:
                time.sleep(0.05)
            assert threading.active_count() <= baseline
            status, _h, body = _request(server, "/v1/health")
            assert status == 200 and body["status"] == "ok"
        finally:
            server.service.shutdown()
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)


# ----------------------------------------------------------------------
# Concurrent fleet screens: single-flight (satellite)
# ----------------------------------------------------------------------
class TestFleetSingleFlight:
    @staticmethod
    def _fake_fleet(gate, calls):
        def fake_run_fleet(_profile, households, _options):
            calls.append(households)
            assert gate.wait(timeout=30)
            return SimpleNamespace(
                telemetry=SimpleNamespace(
                    to_json=lambda: {"households": households, "hit_rate": 1.0}
                ),
                blocklist={"schema": 1, "entries": []},
                exit_code=0,
            )

        return fake_run_fleet

    def test_second_concurrent_screen_gets_409(self, monkeypatch):
        import repro.fleet.driver as driver_mod

        gate = threading.Event()
        calls = []
        monkeypatch.setattr(
            driver_mod, "run_fleet", self._fake_fleet(gate, calls)
        )
        service = SoteriaService(jobs=1)
        try:
            results = {}

            def first():
                results["first"] = service.fleet_screen({"households": 111})

            thread = threading.Thread(target=first)
            thread.start()
            deadline = time.time() + 5
            while not calls:
                assert time.time() < deadline, "first screen never started"
                time.sleep(0.01)
            # The gate is held: a concurrent screen must be refused,
            # never interleaved.
            with pytest.raises(FleetBusyError) as info:
                service.fleet_screen({"households": 222})
            assert info.value.retry_after > 0
            gate.set()
            thread.join(timeout=10)
            assert results["first"]["telemetry"]["households"] == 111
            # Only the first screen ever ran; its result is published.
            assert calls == [111]
            assert service.fleet_latest()["telemetry"]["households"] == 111
            # The gate is released: a new screen runs fine.
            assert service.fleet_screen({"households": 333})[
                "telemetry"
            ]["households"] == 333
        finally:
            service.shutdown()

    def test_http_409_with_retry_after(self, monkeypatch, tmp_path):
        import repro.fleet.driver as driver_mod

        gate = threading.Event()
        calls = []
        monkeypatch.setattr(
            driver_mod, "run_fleet", self._fake_fleet(gate, calls)
        )
        server = build_server(
            host="127.0.0.1", port=0, pool="thread", jobs=1,
            state_dir=tmp_path / "state",
        )
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            outcome = {}

            def first():
                outcome["result"] = _request(
                    server, "/v1/fleet", {"households": 10}, timeout=60
                )

            poster = threading.Thread(target=first)
            poster.start()
            deadline = time.time() + 5
            while not calls:
                assert time.time() < deadline
                time.sleep(0.01)
            status, headers, body = _request(
                server, "/v1/fleet", {"households": 20}
            )
            assert status == 409
            assert headers.get("Retry-After", "").isdigit()
            assert "already running" in body["error"]
            gate.set()
            poster.join(timeout=10)
            assert outcome["result"][0] == 200
        finally:
            server.service.shutdown()
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)


# ----------------------------------------------------------------------
# Job TTL/GC × restart recovery (satellite)
# ----------------------------------------------------------------------
class TestJobTtlGc:
    @staticmethod
    def _record(name, **fields):
        key = submission_key([(name, f"digest-{name}")])
        record = JobRecord(
            id=job_id_for(key), key=key, kind="app",
            apps=[name], digests=[f"digest-{name}"],
        )
        for attr, value in fields.items():
            setattr(record, attr, value)
        return record

    def test_sweep_reaps_settled_records_memory_and_disk(self, tmp_path):
        store = JobStore(tmp_path, ttl=100.0)
        done, _ = store.submit(self._record("Old"))
        store.update(done.id, status="done", verdict=APPROVED)
        fresh, _ = store.submit(self._record("Fresh"))
        store.update(fresh.id, status="done", verdict=APPROVED)
        running, _ = store.submit(self._record("Running"))
        store.update(running.id, status="running")

        jobs_dir = tmp_path / "jobs"
        assert len(list(jobs_dir.glob("*.json"))) == 3
        # Age only "Old" past the TTL, then sweep "now".
        store.get(done.id).updated_at = time.time() - 1000
        expired = store.sweep()
        assert expired == [done.id]
        assert store.get(done.id) is None
        assert store.find(done.key) is None
        assert store.get(fresh.id) is not None
        # In-flight records NEVER expire, no matter how old.
        store.get(running.id).updated_at = time.time() - 10_000
        assert store.sweep() == []
        assert store.get(running.id).status == "running"
        # The durable mirror shrank on disk.
        assert len(list(jobs_dir.glob("*.json"))) == 2
        assert store.expired_total == 1
        counts = store.counts()
        assert counts["total"] == 2
        assert counts["expired"] == 1

    def test_startup_prunes_expired_mirror_files(self, tmp_path):
        store = JobStore(tmp_path)  # no TTL: writer keeps everything
        done, _ = store.submit(self._record("Done"))
        store.update(done.id, status="done", verdict=APPROVED)
        time.sleep(0.05)

        reborn = JobStore(tmp_path, ttl=0.01)  # restart with a tiny TTL
        assert reborn.get(done.id) is None
        assert reborn.expired_total == 1
        assert list((tmp_path / "jobs").glob("*.json")) == []
        # A resubmission after GC is a FRESH job.
        _record, created = reborn.submit(self._record("Done"))
        assert created

    def test_service_resubmission_after_gc_reruns_cleanly(
        self, instant_analysis, tmp_path
    ):
        service = SoteriaService(state_dir=tmp_path / "state", job_ttl=0.2)
        try:
            record, created = service.submit([("A", GOOD)])
            assert created
            assert service.wait(record.id, timeout=30).status == "done"
            assert service.stats()["jobs"]["total"] == 1
            time.sleep(0.3)
            # The lazy sweep on the submission path reaped the settled
            # record, so the identical resubmission is NEW work again —
            # and runs cleanly end to end.
            again, created = service.submit([("A", GOOD)])
            assert created
            assert again.id == record.id  # same key -> same (fresh) id
            assert service.wait(again.id, timeout=30).status == "done"
            stats = service.stats()
            assert stats["jobs"]["total"] == 1    # old record is gone
            assert stats["jobs"]["expired"] >= 1
            assert stats["service"]["job_ttl"] == 0.2
        finally:
            service.shutdown()

    def test_ttl_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError):
            JobStore(tmp_path, ttl=0)
        with pytest.raises(ValueError):
            SoteriaService(job_ttl=-5)


# ----------------------------------------------------------------------
# The acceptance burst: 64 concurrent waiters on a 2-worker service
# ----------------------------------------------------------------------
class TestWaiterBurstAcceptance:
    def test_64_waiter_burst_bounded_and_clean(
        self, gated_analysis, tmp_path
    ):
        WAITERS = 64
        SLOTS = 16
        server = build_server(
            host="127.0.0.1", port=0, pool="thread", jobs=2,
            max_pending=WAITERS, tenant_quota=WAITERS, max_waiters=SLOTS,
            state_dir=tmp_path / "state",
        )
        service = server.service
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        statuses = []
        results = [None] * WAITERS

        def client(index):
            tenant = "alpha" if index % 2 == 0 else "beta"
            status, _headers, job = _request(
                server, "/v1/submissions?wait=30",
                {"source": f"// burst {index}\n" + GOOD, "name": f"B{index}"},
                headers={"X-Soteria-Tenant": tenant},
                timeout=120,
            )
            statuses.append(status)
            # Degraded waiters got a snapshot — poll to settlement like
            # a polite client would.
            deadline = time.time() + 60
            while job["status"] not in ("done", "failed"):
                assert time.time() < deadline, job
                time.sleep(0.1)
                _s, _h, job = _request(server, f"/v1/jobs/{job['id']}")
            results[index] = job

        try:
            threads = [
                threading.Thread(target=client, args=(index,))
                for index in range(WAITERS)
            ]
            for worker in threads:
                worker.start()
            # Let the burst land: every job admitted and in flight.
            deadline = time.time() + 30
            while len(service._events) < WAITERS:
                assert time.time() < deadline, (
                    f"only {len(service._events)} of {WAITERS} in flight"
                )
                time.sleep(0.05)
            # Saturated: one more submission is answered 429.
            status, headers, body = _request(
                server, "/v1/submissions",
                {"source": "// extra\n" + GOOD, "name": "Extra"},
            )
            assert status == 429
            assert headers.get("Retry-After", "").isdigit()
            # Open the gate; everything drains.
            gated_analysis.set()
            for worker in threads:
                worker.join(timeout=120)
                assert not worker.is_alive()

            # Zero 5xx across the whole burst; every job done.
            assert all(status == 201 for status in statuses), statuses
            assert all(job["status"] == "done" for job in results)
            # Handler threads were bounded: never one parked per waiter.
            stats = service._wait_stats
            assert stats["peak"] <= SLOTS, stats
            assert stats["degraded"] > 0, stats   # the excess degraded
            # ... and the registries are EMPTY after settlement.
            assert service._futures == {}
            assert service._events == {}
            assert service._sources == {}
            # Per-tenant counts are visible in /v1/stats.
            _s, _h, final = _request(server, "/v1/stats")
            tenants = final["jobs"]["tenants"]
            assert tenants["alpha"]["done"] == WAITERS // 2
            assert tenants["beta"]["done"] == WAITERS // 2
            assert final["service"]["waiters"]["peak"] <= SLOTS
            assert final["service"]["rejected"]["service"] >= 1
        finally:
            service.shutdown()
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)


# ----------------------------------------------------------------------
# Defaults
# ----------------------------------------------------------------------
class TestDefaults:
    def test_build_server_and_serve_default_to_the_process_pool(self):
        build_sig = inspect.signature(build_server)
        assert build_sig.parameters["pool"].default == "process"
        serve_sig = inspect.signature(app_mod.serve)
        assert serve_sig.parameters["pool"].default == "process"

    def test_oversized_wait_is_clamped(self, instant_analysis, tmp_path):
        server = build_server(
            host="127.0.0.1", port=0, pool="thread", jobs=1,
            state_dir=tmp_path / "state",
        )
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            status, _h, job = _request(
                server, "/v1/submissions?wait=999999",
                {"source": GOOD, "name": "A"},
            )
            assert status == 201
            assert job["status"] == "done"
        finally:
            server.service.shutdown()
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)
