"""Orchestrator and command-line interface."""

import pytest

from repro import analyze_app, analyze_environment
from repro.cli import main

GOOD = '''
definition(name: "Good")
preferences { section("s") {
    input "ws", "capability.waterSensor"
    input "vd", "capability.valve"
} }
def installed() { subscribe(ws, "water.wet", h) }
def h(evt) { vd.close() }
'''

BAD = GOOD.replace("close()", "open()").replace('"Good"', '"Bad"')


class TestOrchestrator:
    def test_analysis_artifacts(self):
        analysis = analyze_app(GOOD)
        assert analysis.ir.devices()
        assert analysis.model.size() == 4
        assert analysis.kripke.states
        assert analysis.timings.keys() >= {"ir", "model", "kripke", "properties"}

    def test_violated_ids_empty_for_clean_app(self):
        assert analyze_app(GOOD).violated_ids() == set()

    def test_check_results_recorded(self):
        analysis = analyze_app(GOOD)
        assert "P.30" in analysis.check_results
        assert all(r.holds for r in analysis.check_results["P.30"])

    def test_environment_combines_apps(self):
        env = analyze_environment([GOOD, BAD])
        assert env.union_model.apps == ["Good", "Bad"]
        assert {"P.30", "P.11"} <= env.violated_ids()

    def test_environment_accepts_preanalyzed(self):
        env = analyze_environment([analyze_app(GOOD), analyze_app(BAD)])
        assert len(env.analyses) == 2

    def test_multi_app_violations_filter(self):
        env = analyze_environment([GOOD, BAD])
        for violation in env.multi_app_violations():
            assert len(violation.apps) > 1


class TestCli:
    def test_analyze_clean_app_exit_zero(self, tmp_path, capsys):
        path = tmp_path / "good.groovy"
        path.write_text(GOOD)
        code = main(["analyze", str(path)])
        captured = capsys.readouterr()
        assert code == 0
        assert "all checked properties HOLD" in captured.out

    def test_analyze_bad_app_exit_one(self, tmp_path, capsys):
        path = tmp_path / "bad.groovy"
        path.write_text(BAD)
        code = main(["analyze", str(path)])
        assert code == 1
        assert "VIOLATION" in capsys.readouterr().out

    def test_dot_and_smv_outputs(self, tmp_path, capsys):
        app = tmp_path / "good.groovy"
        app.write_text(GOOD)
        dot = tmp_path / "model.dot"
        smv = tmp_path / "model.smv"
        main(["analyze", str(app), "--dot", str(dot), "--smv", str(smv)])
        assert dot.read_text().startswith("digraph")
        assert smv.read_text().startswith("MODULE main")

    def test_env_command(self, tmp_path, capsys):
        a = tmp_path / "a.groovy"
        b = tmp_path / "b.groovy"
        a.write_text(GOOD)
        b.write_text(BAD)
        code = main(["env", str(a), str(b)])
        assert code == 1
        assert "multi-app analysis" in capsys.readouterr().out

    def test_list_properties(self, capsys):
        code = main(["list-properties"])
        out = capsys.readouterr().out
        assert code == 0
        assert "S.1" in out and "P.30" in out

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])
