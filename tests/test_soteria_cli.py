"""Orchestrator and command-line interface."""

import pytest

from repro import analyze_app, analyze_environment
from repro.cli import main

GOOD = '''
definition(name: "Good")
preferences { section("s") {
    input "ws", "capability.waterSensor"
    input "vd", "capability.valve"
} }
def installed() { subscribe(ws, "water.wet", h) }
def h(evt) { vd.close() }
'''

BAD = GOOD.replace("close()", "open()").replace('"Good"', '"Bad"')


class TestOrchestrator:
    def test_analysis_artifacts(self):
        analysis = analyze_app(GOOD)
        assert analysis.ir.devices()
        assert analysis.model.size() == 4
        assert analysis.kripke.states
        assert analysis.timings.keys() >= {"ir", "model", "kripke", "properties"}

    def test_violated_ids_empty_for_clean_app(self):
        assert analyze_app(GOOD).violated_ids() == set()

    def test_check_results_recorded(self):
        analysis = analyze_app(GOOD)
        assert "P.30" in analysis.check_results
        assert all(r.holds for r in analysis.check_results["P.30"])

    def test_environment_combines_apps(self):
        env = analyze_environment([GOOD, BAD])
        assert env.union_model.apps == ["Good", "Bad"]
        assert {"P.30", "P.11"} <= env.violated_ids()

    def test_environment_accepts_preanalyzed(self):
        env = analyze_environment([analyze_app(GOOD), analyze_app(BAD)])
        assert len(env.analyses) == 2

    def test_multi_app_violations_filter(self):
        env = analyze_environment([GOOD, BAD])
        for violation in env.multi_app_violations():
            assert len(violation.apps) > 1


class TestCli:
    def test_analyze_clean_app_exit_zero(self, tmp_path, capsys):
        path = tmp_path / "good.groovy"
        path.write_text(GOOD)
        code = main(["analyze", str(path)])
        captured = capsys.readouterr()
        assert code == 0
        assert "all checked properties HOLD" in captured.out

    def test_analyze_bad_app_exit_one(self, tmp_path, capsys):
        path = tmp_path / "bad.groovy"
        path.write_text(BAD)
        code = main(["analyze", str(path)])
        assert code == 1
        assert "VIOLATION" in capsys.readouterr().out

    def test_dot_and_smv_outputs(self, tmp_path, capsys):
        app = tmp_path / "good.groovy"
        app.write_text(GOOD)
        dot = tmp_path / "model.dot"
        smv = tmp_path / "model.smv"
        main(["analyze", str(app), "--dot", str(dot), "--smv", str(smv)])
        assert dot.read_text().startswith("digraph")
        assert smv.read_text().startswith("MODULE main")

    def test_env_command(self, tmp_path, capsys):
        a = tmp_path / "a.groovy"
        b = tmp_path / "b.groovy"
        a.write_text(GOOD)
        b.write_text(BAD)
        code = main(["env", str(a), str(b)])
        assert code == 1
        assert "multi-app analysis" in capsys.readouterr().out

    def test_list_properties(self, capsys):
        code = main(["list-properties"])
        out = capsys.readouterr().out
        assert code == 0
        assert "S.1" in out and "P.30" in out

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])


class TestCorpusCli:
    def test_violating_dataset_exits_one(self, capsys):
        # MalIoT apps violate individually (Appendix C): like `analyze`
        # and `env`, `corpus` must signal findings in its exit status.
        code = main(["corpus", "maliot", "--jobs", "1"])
        out = capsys.readouterr().out
        assert code == 1
        assert "VIOLATIONS" in out

    def test_clean_dataset_exits_zero(self, capsys):
        # All 35 official apps verify clean individually (Table 2).
        code = main(["corpus", "official", "--jobs", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "0 app(s) with violations" in out

    def test_cache_dir_flag_persists_analyses(self, tmp_path, capsys):
        from repro.corpus.diskcache import DiskCache

        code = main(
            ["corpus", "maliot", "--jobs", "1", "--cache-dir", str(tmp_path)]
        )
        assert code == 1
        assert len(DiskCache(tmp_path).entries()) == 17


class TestCacheCli:
    def test_no_cache_dir_is_a_usage_error(self, monkeypatch, capsys):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        code = main(["cache"])
        assert code == 2
        assert "cache directory" in capsys.readouterr().err

    def test_reports_per_stage_entries_and_bytes(self, tmp_path, capsys):
        from repro.corpus.loader import load_app
        from repro.pipeline.runner import Pipeline
        from repro.pipeline.store import ArtifactStore

        Pipeline(ArtifactStore(tmp_path)).app_analysis(load_app("O1"))
        code = main(["cache", "--cache-dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "staged artifact cache" in out
        for stage in ("ir", "model", "kripke", "check"):
            assert f"\n  {stage}" in out
        assert "total" in out

    def test_cache_dir_env_respected(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        code = main(["cache"])
        out = capsys.readouterr().out
        assert code == 0
        assert str(tmp_path) in out
        assert "(empty)" in out

    def test_clear_empties_the_store(self, tmp_path, capsys):
        from repro.corpus.loader import load_app
        from repro.pipeline.runner import Pipeline
        from repro.pipeline.store import ArtifactStore

        Pipeline(ArtifactStore(tmp_path)).app_analysis(load_app("O1"))
        assert main(["cache", "--cache-dir", str(tmp_path), "--clear"]) == 0
        capsys.readouterr()
        main(["cache", "--cache-dir", str(tmp_path)])
        assert "(empty)" in capsys.readouterr().out


class TestServeCli:
    def test_serve_flags_reach_the_service(self, monkeypatch):
        import repro.cli as cli_mod

        captured = {}

        def fake_serve(**kwargs):
            captured.update(kwargs)

        monkeypatch.setattr("repro.service.app.serve", fake_serve)
        code = cli_mod.main(
            ["serve", "--host", "0.0.0.0", "--port", "0", "--jobs", "3",
             "--cache-dir", "/tmp/c", "--state-dir", "/tmp/s",
             "--pool", "thread", "--max-pending", "8",
             "--tenant-quota", "4", "--job-ttl", "3600"]
        )
        assert code == 0
        assert captured == {
            "host": "0.0.0.0", "port": 0, "jobs": 3,
            "cache_dir": "/tmp/c", "state_dir": "/tmp/s", "pool": "thread",
            "max_pending": 8, "tenant_quota": 4, "job_ttl": 3600.0,
        }

    def test_serve_defaults_to_the_process_pool(self, monkeypatch):
        import repro.cli as cli_mod

        captured = {}

        def fake_serve(**kwargs):
            captured.update(kwargs)

        monkeypatch.setattr("repro.service.app.serve", fake_serve)
        assert cli_mod.main(["serve", "--port", "0"]) == 0
        assert captured["pool"] == "process"
        assert captured["job_ttl"] is None


class TestSweepCli:
    def test_sweep_maliot_finds_environment_violations(self, tmp_path, capsys):
        code = main(
            ["sweep", "maliot", "--jobs", "1", "--cache-dir", str(tmp_path)]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "App1+App15" in out
        assert "environment-only: S.1" in out
        # The 13-app interaction cluster (82 944 states) used to be
        # skipped for size; the auto backend now checks it symbolically.
        assert "skipped" not in out
        assert "0 failed" in out
        assert "[symbolic/monolithic/fast]" in out  # 13-app cluster, 70 fragments
        assert "environment-only: P.14, P.3" in out

    def test_sweep_warm_cache_run_matches(self, tmp_path, capsys):
        main(["sweep", "maliot", "--jobs", "1", "--cache-dir", str(tmp_path)])
        first = capsys.readouterr().out
        from repro.corpus import batch

        batch.clear_cache()  # simulate a fresh process: disk must carry it
        try:
            code = main(
                ["sweep", "maliot", "--jobs", "1", "--cache-dir", str(tmp_path)]
            )
        finally:
            batch.clear_cache()
        second = capsys.readouterr().out
        assert code == 1
        assert second == first

    def test_sweep_pairs_mode(self, capsys):
        code = main(["sweep", "maliot", "--jobs", "1", "--pairs"])
        out = capsys.readouterr().out
        assert code == 1
        assert "App16+App17" in out

    def test_sweep_all_failed_signals_incomplete(self, capsys):
        # Nothing violated because nothing was successfully *checked*:
        # that must not look like a clean exit to a CI gate.  Forcing the
        # explicit backend under an impossible budget fails every group.
        code = main(
            ["sweep", "maliot", "--jobs", "1", "--max-states", "1",
             "--backend", "explicit"]
        )
        out = capsys.readouterr().out
        assert code == 3
        assert "FAILED" in out
        assert "0 environment(s) with violations, 2 failed" in out

    def test_sweep_symbolic_backend_flag(self, capsys):
        code = main(
            ["sweep", "maliot", "--jobs", "1", "--pairs",
             "--backend", "symbolic"]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "[symbolic/monolithic/fast]" in out  # tiny pairs stay monolithic
        assert "App16+App17" in out


class TestFleetCli:
    def test_fleet_screen_reports_and_writes_feeds(self, tmp_path, capsys):
        telemetry_path = tmp_path / "telemetry.json"
        blocklist_path = tmp_path / "blocklist.json"
        code = main(
            ["fleet", "--households", "200", "--templates", "3",
             "--variants", "2", "--seed", "5", "--jobs", "1",
             "--telemetry-out", str(telemetry_path),
             "--blocklist-out", str(blocklist_path)]
        )
        out = capsys.readouterr().out
        # The generator's benign fragments still race in unions, so a
        # real profile always screens dirty.
        assert code == 1
        assert "200 household(s) screened" in out
        assert "cache hit rate" in out
        assert "blocklist:" in out
        import json

        telemetry = json.loads(telemetry_path.read_text())
        assert telemetry["households"] == 200
        assert 0.0 <= telemetry["hit_rate"] <= 1.0
        feed = json.loads(blocklist_path.read_text())
        assert feed["schema"] == 1
        assert feed["entries"]

    def _patched_exit(self, monkeypatch, violating: int, failed: int) -> int:
        import repro.fleet.driver as driver_mod
        from repro.fleet.driver import FleetResult
        from repro.fleet.telemetry import FleetTelemetry

        def fake_run_fleet(profile, count, options=None):
            telemetry = FleetTelemetry(
                households=count,
                violating_households=violating,
                failed_households=failed,
            )
            return FleetResult(
                telemetry=telemetry,
                blocklist={"schema": 1, "entries": []},
            )

        monkeypatch.setattr(driver_mod, "run_fleet", fake_run_fleet)
        return main(["fleet", "--households", "10"])

    def test_clean_fleet_exits_zero(self, monkeypatch, capsys):
        assert self._patched_exit(monkeypatch, violating=0, failed=0) == 0
        assert "0 violating" not in capsys.readouterr().err

    def test_failed_only_fleet_exits_three(self, monkeypatch, capsys):
        # An incomplete screen must not look clean to a CI gate —
        # same convention as ``soteria sweep``.
        assert self._patched_exit(monkeypatch, violating=0, failed=4) == 3
        capsys.readouterr()

    def test_violations_trump_failures(self, monkeypatch, capsys):
        assert self._patched_exit(monkeypatch, violating=2, failed=4) == 1
        capsys.readouterr()
