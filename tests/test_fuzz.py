"""Differential fuzz driver: determinism, oracles, reproducers, CLI."""

import json

import pytest

from repro.cli import main
from repro.corpus.fuzz import (
    CaseResult,
    FuzzConfig,
    replay,
    run_fuzz,
    write_reproducer,
)
from repro.gen import generate_app

#: One small campaign reused across tests (results are deterministic, so
#: a module-scoped run keeps tier-1 cheap).
SEED, COUNT = 0, 5


@pytest.fixture(scope="module")
def campaign():
    return run_fuzz(seed=SEED, count=COUNT, jobs=1)


class TestCampaign:
    def test_every_case_passes_both_oracles(self, campaign):
        assert [r.status for r in campaign.results] == ["ok"] * COUNT
        assert campaign.ok

    def test_detection_rate_meets_the_bar(self, campaign):
        assert campaign.injected_total() > 0
        assert campaign.detection_rate() >= 0.95

    def test_results_in_case_order(self, campaign):
        assert [r.index for r in campaign.results] == list(range(COUNT))

    def test_rerun_is_identical(self, campaign):
        again = run_fuzz(seed=SEED, count=COUNT, jobs=1)
        for first, second in zip(campaign.results, again.results):
            assert first.sources == second.sources  # byte-identical
            assert first.app_ids == second.app_ids
            assert (first.status, first.injected, first.detected) == (
                second.status,
                second.injected,
                second.detected,
            )

    def test_jobs_do_not_change_verdicts(self, campaign):
        parallel = run_fuzz(seed=SEED, count=COUNT, jobs=2)
        assert [r.sources for r in parallel.results] == [
            r.sources for r in campaign.results
        ]
        assert [r.status for r in parallel.results] == [
            r.status for r in campaign.results
        ]

    def test_mixed_campaign_builds_cross_dataset_clusters(self):
        report = run_fuzz(
            seed=1,
            count=8,
            jobs=1,
            config=FuzzConfig(mix_dataset="official"),
        )
        assert report.ok
        mixed = [r for r in report.results if r.kind == "mixed"]
        assert mixed, [r.kind for r in report.results]
        for result in mixed:
            # One corpus member (by id) plus one synthetic member.
            assert len(result.app_ids) == len(result.sources) + 1
            assert result.app_ids[0].startswith(("O", "TP", "App"))


class TestReproducers:
    def _failing_result(self):
        app = generate_app(0, 1, inject=True)
        return CaseResult(
            index=3,
            kind="app",
            app_ids=(app.app_id,),
            sources=(app.source,),
            injected=("P.99",),  # a property nothing flags
            detected=(),
            status="missed",
            detail="injected violations undetected: P.99",
            shrunk=(app.source,),
        )

    def test_write_reproducer_layout(self, tmp_path):
        directory = write_reproducer(self._failing_result(), FuzzConfig(), tmp_path)
        assert (directory / "app0.groovy").is_file()
        meta = json.loads((directory / "meta.json").read_text())
        assert meta["status"] == "missed"
        assert meta["injected"] == ["P.99"]
        assert meta["seed"] == 0

    def test_replay_reproduces_missed_injection(self, tmp_path):
        directory = write_reproducer(self._failing_result(), FuzzConfig(), tmp_path)
        reproduced, message = replay(directory)
        assert reproduced
        assert "P.99" in message

    def test_replay_on_agreeing_input_does_not_reproduce(self, tmp_path):
        result = self._failing_result()
        result.status = "mismatch"
        result.detail = "fabricated"
        directory = write_reproducer(result, FuzzConfig(), tmp_path)
        reproduced, message = replay(directory)
        assert not reproduced
        assert "did not reproduce" in message

    def test_replay_empty_directory(self, tmp_path):
        reproduced, message = replay(tmp_path)
        assert not reproduced
        assert "no app" in message

    def test_shrunk_cluster_reproducer_records_no_phantom_corpus_members(
        self, tmp_path
    ):
        # A cluster whose shrinker dropped a member: corpus_members must
        # come from the case's real corpus ids (here none), not be
        # inferred from the app_ids/shrunk length difference.
        first = generate_app(0, 1, inject=True)
        second = generate_app(0, 3, inject=False)
        result = CaseResult(
            index=9, kind="cluster",
            app_ids=(first.app_id, second.app_id),
            sources=(first.source, second.source),
            injected=(), detected=(), status="mismatch",
            detail="fabricated", shrunk=(first.source,),
        )
        directory = write_reproducer(result, FuzzConfig(), tmp_path)
        meta = json.loads((directory / "meta.json").read_text())
        assert meta["corpus_members"] == []
        # Replay must run (the backends agree, so it reports no repro),
        # not crash trying to load a generated id as a corpus app.
        reproduced, message = replay(directory)
        assert not reproduced
        assert "did not reproduce" in message

    def test_meta_records_campaign_config(self, tmp_path):
        result = self._failing_result()
        config = FuzzConfig(mix_dataset="official")
        directory = write_reproducer(result, config, tmp_path)
        meta = json.loads((directory / "meta.json").read_text())
        assert meta["config"]["mix_dataset"] == "official"
        assert meta["config"]["cluster_rate"] == config.cluster_rate

    def test_replay_with_unknown_corpus_member_is_graceful(self, tmp_path):
        directory = write_reproducer(self._failing_result(), FuzzConfig(), tmp_path)
        meta_path = directory / "meta.json"
        meta = json.loads(meta_path.read_text())
        meta["corpus_members"] = ["NotARealApp1"]
        meta_path.write_text(json.dumps(meta))
        reproduced, message = replay(directory)
        assert not reproduced
        assert "unknown corpus member" in message


class TestErrorShrinking:
    def test_error_cases_shrink_with_same_error_predicate(self):
        from repro.corpus.fuzz import _same_error

        good = generate_app(0, 3, inject=False)
        predicate = _same_error("ZeroDivisionError", [])
        # Nothing raises on a valid app: the predicate rejects it, so the
        # shrinker keeps the original bytes.
        assert not predicate([good.source])


class TestCli:
    def test_fuzz_exit_zero_and_summary(self, capsys, tmp_path):
        code = main(
            [
                "fuzz",
                "--seed", "0",
                "--count", "3",
                "--jobs", "1",
                "--out", str(tmp_path / "repro"),
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "== fuzz: seed 0, 3 case(s)" in captured.out
        assert "OK" in captured.out
        # Clean campaign: no reproducers written.
        assert not (tmp_path / "repro").exists()

    def test_fuzz_replay_flag(self, capsys, tmp_path):
        app = generate_app(0, 1, inject=True)
        case = CaseResult(
            index=0, kind="app", app_ids=(app.app_id,),
            sources=(app.source,), injected=("P.99",), detected=(),
            status="missed", detail="", shrunk=(app.source,),
        )
        directory = write_reproducer(case, FuzzConfig(), tmp_path)
        code = main(["fuzz", "--replay", str(directory)])
        captured = capsys.readouterr()
        assert code == 1
        assert "reproduced" in captured.out
