"""Corpus integrity: loading, parsing, structure of all 82 apps."""

import pytest

from repro.corpus import groundtruth
from repro.corpus.loader import app_ids, load_app, load_corpus, load_source
from repro.ir import build_ir


class TestLoading:
    def test_dataset_sizes(self):
        assert len(app_ids("official")) == 35
        assert len(app_ids("thirdparty")) == 30
        assert len(app_ids("maliot")) == 17

    def test_ids_normalised(self):
        assert app_ids("official")[0] == "O1"
        assert app_ids("maliot")[0] == "App1"

    def test_ids_numerically_ordered(self):
        ids = app_ids("official")
        assert ids.index("O2") < ids.index("O10")

    def test_load_app_names_match_ids(self):
        app = load_app("TP4")
        assert app.name == "TP4"

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            app_ids("bogus")

    def test_unknown_app(self):
        with pytest.raises(KeyError):
            load_source("O99")

    def test_load_corpus_returns_all(self):
        corpus = load_corpus("maliot")
        assert set(corpus) == {f"App{i}" for i in range(1, 18)}


@pytest.mark.parametrize("dataset", ["official", "thirdparty", "maliot"])
def test_every_app_parses_and_builds_ir(dataset):
    for app_id, app in load_corpus(dataset).items():
        ir = build_ir(app)
        assert ir.permissions, f"{app_id} has no permissions"
        if app_id != "App10":  # App10's point is dynamic preferences
            assert ir.entry_points, f"{app_id} has no entry points"


@pytest.mark.parametrize("dataset", ["official", "thirdparty", "maliot"])
def test_every_app_has_definition_metadata(dataset):
    for app_id, app in load_corpus(dataset).items():
        assert app.metadata.get("name"), app_id
        assert app.metadata.get("description"), app_id


def test_loc_in_realistic_range():
    for dataset in ("official", "thirdparty", "maliot"):
        for app_id, app in load_corpus(dataset).items():
            assert 10 <= app.loc() <= 300, (app_id, app.loc())


class TestGroundTruthConsistency:
    def test_maliot_totals(self):
        assert groundtruth.maliot_violation_count() == 20
        assert groundtruth.maliot_detectable_count() == 17
        assert (
            groundtruth.MALIOT_TOTAL_VIOLATIONS
            - groundtruth.MALIOT_MISSED
            == groundtruth.MALIOT_DETECTED
        )

    def test_table4_headline_numbers(self):
        assert sum(len(g.apps) for g in groundtruth.TABLE4_GROUPS) == 17
        assert sum(len(g.violated) for g in groundtruth.TABLE4_GROUPS) == 11

    def test_table3_headline_numbers(self):
        assert len(groundtruth.TABLE3_INDIVIDUAL) == groundtruth.TABLE3_APP_COUNT
        pairs = sum(len(v) for v in groundtruth.TABLE3_INDIVIDUAL.values())
        assert pairs >= groundtruth.TABLE3_DISTINCT_PROPERTY_COUNT

    def test_group_apps_exist_in_corpus(self):
        official = set(app_ids("official"))
        thirdparty = set(app_ids("thirdparty"))
        for group in groundtruth.TABLE4_GROUPS:
            for app_id in group.apps:
                assert app_id in official | thirdparty, app_id

    def test_maliot_environment_apps_exist(self):
        maliot = set(app_ids("maliot"))
        for group, _prop in groundtruth.MALIOT_ENVIRONMENTS:
            assert set(group) <= maliot

    def test_maliot_apps_have_ground_truth_comment(self):
        for entry in groundtruth.MALIOT_GROUND_TRUTH:
            source = load_source(entry.app_id)
            assert "GROUND-TRUTH" in source, entry.app_id
