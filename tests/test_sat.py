"""CDCL SAT solver: unit tests, brute-force cross-checks, and the
snapshot-DPLL :class:`ReferenceSolver` as a differential oracle."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.mc.sat import ReferenceSolver, Solver, solve


def _check(clauses, assignment):
    return all(
        any(assignment.get(abs(l), False) == (l > 0) for l in clause)
        for clause in clauses
    )


class TestBasics:
    def test_empty_problem_sat(self):
        assert solve([]) is not None

    def test_single_unit(self):
        model = solve([[1]])
        assert model[1] is True

    def test_negative_unit(self):
        model = solve([[-1]])
        assert model[1] is False

    def test_conflict_units(self):
        assert solve([[1], [-1]]) is None

    def test_simple_3sat(self):
        clauses = [[1, 2], [-1, 3], [-2, -3], [1, 3]]
        model = solve(clauses)
        assert model is not None
        assert _check(clauses, model)

    def test_unsat_pigeonhole_2_in_1(self):
        # Two pigeons, one hole: x1 and x2 both true, but not both.
        clauses = [[1], [2], [-1, -2]]
        assert solve(clauses) is None

    def test_chain_propagation(self):
        clauses = [[1], [-1, 2], [-2, 3], [-3, 4]]
        model = solve(clauses)
        assert all(model[i] for i in (1, 2, 3, 4))

    def test_assumptions(self):
        solver = Solver()
        solver.add_clause([1, 2])
        assert solver.solve(assumptions=[-1]) is not None
        assert solver.solve(assumptions=[-1, -2]) is None

    def test_contradictory_assumptions(self):
        solver = Solver()
        solver.add_clause([1, 2])
        assert solver.solve(assumptions=[1, -1]) is None

    def test_new_var_counter(self):
        solver = Solver()
        first = solver.new_var()
        second = solver.new_var()
        assert second == first + 1


@st.composite
def cnf_instances(draw):
    nvars = draw(st.integers(min_value=1, max_value=6))
    nclauses = draw(st.integers(min_value=1, max_value=12))
    clauses = []
    for _ in range(nclauses):
        width = draw(st.integers(min_value=1, max_value=3))
        clause = [
            draw(st.integers(min_value=1, max_value=nvars))
            * (1 if draw(st.booleans()) else -1)
            for _ in range(width)
        ]
        clauses.append(clause)
    return nvars, clauses


def _brute_force(nvars, clauses):
    for values in itertools.product([False, True], repeat=nvars):
        assignment = {i + 1: values[i] for i in range(nvars)}
        if _check(clauses, assignment):
            return assignment
    return None


@settings(max_examples=60, deadline=None)
@given(cnf_instances())
def test_solver_agrees_with_brute_force(instance):
    nvars, clauses = instance
    expected = _brute_force(nvars, clauses)
    model = solve(clauses)
    if expected is None:
        assert model is None
    else:
        assert model is not None
        assert _check(clauses, model)


@settings(max_examples=30, deadline=None)
@given(cnf_instances())
def test_returned_model_satisfies(instance):
    _nvars, clauses = instance
    model = solve(clauses)
    if model is not None:
        assert _check(clauses, model)


# ----------------------------------------------------------------------
# CDCL vs the retired snapshot-DPLL solver (kept as differential oracle)
# ----------------------------------------------------------------------
def _solve_reference(clauses):
    reference = ReferenceSolver()
    for clause in clauses:
        reference.add_clause(clause)
    return reference.solve()


@settings(max_examples=60, deadline=None)
@given(cnf_instances())
def test_cdcl_agrees_with_reference_dpll(instance):
    """Identical SAT/UNSAT verdicts on random CNFs, and every model
    returned by either solver satisfies the formula."""
    _nvars, clauses = instance
    cdcl = Solver()
    for clause in clauses:
        cdcl.add_clause(clause)
    model = cdcl.solve()
    reference_model = _solve_reference(clauses)
    assert (model is None) == (reference_model is None)
    if model is not None:
        assert _check(clauses, model)
        assert _check(clauses, reference_model)


@settings(max_examples=40, deadline=None)
@given(cnf_instances(), st.lists(st.integers(min_value=1, max_value=6), max_size=3))
def test_cdcl_assumptions_agree_with_reference(instance, assumed_vars):
    """Assumption-based queries equal the reference solver run on the
    formula with the assumptions added as unit clauses."""
    _nvars, clauses = instance
    assumptions = sorted({v for v in assumed_vars})  # positive phase
    cdcl = Solver()
    for clause in clauses:
        cdcl.add_clause(clause)
    model = cdcl.solve(assumptions=assumptions)
    reference_model = _solve_reference(clauses + [[a] for a in assumptions])
    assert (model is None) == (reference_model is None)
    if model is not None:
        assert _check(clauses, model)
        assert all(model[a] for a in assumptions)
    # The assumption query must not poison later plain queries (the
    # incremental contract BMC relies on).
    plain = cdcl.solve()
    assert (plain is None) == (_solve_reference(clauses) is None)
