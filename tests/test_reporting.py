"""Reporting backends: DOT, SMV, console reports."""

import pytest

from repro import analyze_app, analyze_environment
from repro.mc.ctl import parse_ctl
from repro.reporting import render_report, to_dot, to_smv
from repro.reporting.smv import formula_to_smv

WATER = '''
definition(name: "Water-Leak-Detector")
preferences { section("s") {
    input "water_sensor", "capability.waterSensor"
    input "valve_device", "capability.valve"
} }
def installed() { subscribe(water_sensor, "water.wet", h) }
def h(evt) { valve_device.close() }
'''


@pytest.fixture(scope="module")
def analysis():
    return analyze_app(WATER)


class TestDot:
    def test_digraph_wrapper(self, analysis):
        dot = to_dot(analysis.model)
        assert dot.startswith('digraph "Water-Leak-Detector"')
        assert dot.rstrip().endswith("}")

    def test_states_rendered_with_paper_labels(self, analysis):
        dot = to_dot(analysis.model)
        assert '[water.dry, valve.open]' in dot
        assert '[water.wet, valve.closed]' in dot

    def test_edges_carry_event_labels(self, analysis):
        dot = to_dot(analysis.model)
        assert "water_sensor.water.wet" in dot

    def test_truncation_keeps_valid_dot(self, analysis):
        dot = to_dot(analysis.model, max_states=1)
        assert dot.count("->") <= len(analysis.model.transitions)

    def test_quotes_escaped(self, analysis):
        model = analysis.model
        model.name = 'has "quotes"'
        dot = to_dot(model)
        assert 'has \\"quotes\\"' in dot


class TestSmv:
    def test_module_structure(self, analysis):
        smv = to_smv(analysis.model)
        assert smv.startswith("MODULE main")
        assert "VAR" in smv and "TRANS" in smv

    def test_variables_per_attribute(self, analysis):
        smv = to_smv(analysis.model)
        assert "water_sensor_water : {dry, wet};" in smv
        assert "valve_device_valve : {open, closed};" in smv

    def test_event_variable(self, analysis):
        smv = to_smv(analysis.model)
        assert "event : {none, water_sensor_water_wet};" in smv

    def test_stutter_keeps_relation_total(self, analysis):
        smv = to_smv(analysis.model)
        assert "next(event) = none" in smv

    def test_spec_emission(self, analysis):
        formula = parse_ctl("AG attr:valve_device.valve=closed")
        smv = to_smv(analysis.model, specs=[formula])
        assert "SPEC AG (valve_device_valve = closed)" in smv

    def test_event_prop_translation(self, analysis):
        formula = parse_ctl("AG (ev:water_sensor.water.wet -> attr:valve_device.valve=closed)")
        text = formula_to_smv(formula, analysis.model)
        assert "event = water_sensor_water_wet" in text

    def test_untranslatable_props_weaken_to_true(self, analysis):
        formula = parse_ctl("AG act:valve_device.valve=closed")
        assert "TRUE" in formula_to_smv(formula, analysis.model)


class TestConsoleReport:
    def test_app_report_sections(self, analysis):
        text = render_report(analysis)
        assert "Soteria analysis: Water-Leak-Detector" in text
        assert "Permissions block" in text
        assert "states: 4" in text
        assert "all checked properties HOLD" in text

    def test_violation_report_includes_counterexample(self):
        bad = analyze_app(WATER.replace("close()", "open()"))
        text = render_report(bad)
        assert "VIOLATION" in text
        assert "P.30" in text
        assert "counterexample" in text

    def test_environment_report(self):
        env = analyze_environment([WATER])
        text = render_report(env)
        assert "multi-app analysis" in text
        assert "Algorithm 2" in text


class TestTraceDot:
    def test_trace_rendering(self):
        from repro.reporting import to_dot_trace

        bad = analyze_app(WATER.replace("close()", "open()"))
        violation = bad.violations[0]
        dot = to_dot_trace(bad.model, list(violation.counterexample), title="P.30")
        assert dot.startswith('digraph "P.30-trace"')
        assert dot.count("->") == max(0, len(violation.counterexample) - 1)
        assert "fillcolor" in dot  # violating state highlighted

    def test_empty_trace(self):
        from repro.reporting import to_dot_trace

        analysis = analyze_app(WATER)
        dot = to_dot_trace(analysis.model, [])
        assert dot.startswith("digraph") and dot.rstrip().endswith("}")
