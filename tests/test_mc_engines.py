"""Model-checking engines: explicit CTL semantics + engine agreement.

The explicit checker is validated against hand-computed semantics on small
structures; the symbolic (BDD) checker and the SAT-based bounded checker
are cross-validated against the explicit checker on randomized models
(hypothesis), which is how the reproduction earns trust in its NuSMV
substitute.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.mc import check, parse_ctl
from repro.mc.bmc import BoundedChecker, Verdict
from repro.mc.explicit import ExplicitChecker
from repro.mc.symbolic import SymbolicChecker
from repro.model.kripke import KripkeState, KripkeStructure


def make_kripke(edges, labels, initial=(0,)):
    """Build a Kripke structure from {src: [dst]} and {state: props}."""
    ids = sorted(set(edges) | {d for dsts in edges.values() for d in dsts})
    states = {i: KripkeState(state=(str(i),), incoming=()) for i in ids}
    kripke = KripkeStructure()
    kripke.states = [states[i] for i in ids]
    kripke.initial = [states[i] for i in initial]
    for i in ids:
        kripke.succ[states[i]] = [states[d] for d in edges.get(i, [])] or [states[i]]
        kripke.labels[states[i]] = frozenset(labels.get(i, ()))
    return kripke, states


@pytest.fixture
def diamond():
    #      0 -> 1 -> 3(loop), 0 -> 2 -> 3
    return make_kripke(
        {0: [1, 2], 1: [3], 2: [3], 3: [3]},
        {0: {"start"}, 1: {"left"}, 2: {"right"}, 3: {"goal"}},
    )


class TestExplicitSemantics:
    def test_prop(self, diamond):
        kripke, states = diamond
        checker = ExplicitChecker(kripke)
        assert checker.sat(parse_ctl("start")) == {states[0]}

    def test_ex(self, diamond):
        kripke, states = diamond
        checker = ExplicitChecker(kripke)
        assert checker.sat(parse_ctl("EX goal")) == {states[1], states[2], states[3]}

    def test_ax(self, diamond):
        kripke, states = diamond
        checker = ExplicitChecker(kripke)
        # all successors of 0 are {1,2}: AX (left|right) holds at 0
        assert states[0] in checker.sat(parse_ctl("AX (left | right)"))

    def test_ef(self, diamond):
        kripke, states = diamond
        checker = ExplicitChecker(kripke)
        assert checker.sat(parse_ctl("EF goal")) == set(kripke.states)

    def test_af(self, diamond):
        kripke, states = diamond
        checker = ExplicitChecker(kripke)
        assert checker.sat(parse_ctl("AF goal")) == set(kripke.states)

    def test_ag(self, diamond):
        kripke, states = diamond
        checker = ExplicitChecker(kripke)
        assert checker.sat(parse_ctl("AG goal")) == {states[3]}

    def test_eg(self):
        kripke, states = make_kripke(
            {0: [1], 1: [0], 2: [0]},
            {0: {"p"}, 1: {"p"}, 2: {"p", "q"}},
        )
        checker = ExplicitChecker(kripke)
        assert checker.sat(parse_ctl("EG p")) == set(kripke.states)
        assert checker.sat(parse_ctl("EG q")) == set()

    def test_eu(self, diamond):
        kripke, states = diamond
        checker = ExplicitChecker(kripke)
        sat = checker.sat(parse_ctl("E [ left U goal ]"))
        assert states[1] in sat and states[3] in sat
        assert states[0] not in sat  # 0 is neither left nor goal

    def test_au(self):
        kripke, states = make_kripke(
            {0: [1], 1: [2], 2: [2]},
            {0: {"p"}, 1: {"p"}, 2: {"q"}},
        )
        checker = ExplicitChecker(kripke)
        assert checker.sat(parse_ctl("A [ p U q ]")) == set(kripke.states)

    def test_holds_requires_all_initial(self):
        kripke, states = make_kripke(
            {0: [0], 1: [1]}, {0: {"p"}, 1: set()}, initial=(0, 1)
        )
        assert not check(kripke, "p").holds
        assert check(kripke, "EF p").holds is False  # state 1 self-loops


class TestCounterexamples:
    def test_ag_counterexample_path(self):
        kripke, states = make_kripke(
            {0: [1], 1: [2], 2: [2]},
            {0: {"ok"}, 1: {"ok"}, 2: {"bad"}},
        )
        result = check(kripke, "AG !bad")
        assert not result.holds
        assert result.counterexample[0] == states[0]
        assert result.counterexample[-1] == states[2]
        # consecutive states are connected
        for a, b in zip(result.counterexample, result.counterexample[1:]):
            assert b in kripke.succ[a]

    def test_ag_counterexample_is_shortest(self):
        kripke, states = make_kripke(
            {0: [1, 3], 1: [2], 2: [2], 3: [3]},
            {3: {"bad"}},
        )
        result = check(kripke, "AG !bad")
        assert len(result.counterexample) == 2  # 0 -> 3

    def test_af_lasso(self):
        kripke, states = make_kripke(
            {0: [1], 1: [0]},
            {0: set(), 1: set()},
        )
        result = check(kripke, "AF goal")
        assert not result.holds
        assert result.counterexample_loop  # stem + cycle in !goal

    def test_holding_formula_has_no_counterexample(self):
        kripke, _states = make_kripke({0: [0]}, {0: {"p"}})
        result = check(kripke, "AG p")
        assert result.holds
        assert not result.counterexample


# ----------------------------------------------------------------------
# Engine agreement on random structures
# ----------------------------------------------------------------------
_FORMULAS = [
    "AG p", "EF q", "AF p", "EG q", "AX p", "EX q",
    "AG (p -> AF q)", "E [ p U q ]", "A [ p U q ]",
    "!AG p", "EF (p & q)", "AG (p | !q)",
]


def _random_kripke(seed: int):
    rng = random.Random(seed)
    n = rng.randint(3, 9)
    edges = {}
    labels = {}
    for i in range(n):
        edges[i] = rng.sample(range(n), k=rng.randint(1, min(3, n)))
        labels[i] = {p for p in ("p", "q") if rng.random() < 0.5}
    return make_kripke(edges, labels, initial=(0,))


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_symbolic_agrees_with_explicit(seed):
    kripke, _states = _random_kripke(seed)
    explicit = ExplicitChecker(kripke)
    symbolic = SymbolicChecker(kripke)
    for text in _FORMULAS:
        formula = parse_ctl(text)
        assert symbolic.sat_states(formula) == explicit.sat(formula), text


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_bmc_agrees_with_explicit_on_invariants(seed):
    kripke, _states = _random_kripke(seed)
    explicit = ExplicitChecker(kripke)
    bounded = BoundedChecker(kripke)
    formula = parse_ctl("AG p")
    expected = explicit.check(formula).holds
    verdict, trace = bounded.check_invariant(formula, bound=len(kripke.states))
    # The bound covers the completeness bound |S|-1: never inconclusive.
    assert verdict is not Verdict.UNKNOWN
    assert bool(verdict) == expected
    if verdict is Verdict.VIOLATED:
        assert trace[0] in kripke.initial
        for a, b in zip(trace, trace[1:]):
            assert b in kripke.succ[a]
        assert "p" not in kripke.labels[trace[-1]]


def test_bmc_rejects_non_invariants():
    kripke, _states = make_kripke({0: [0]}, {0: {"p"}})
    with pytest.raises(ValueError):
        BoundedChecker(kripke).check_invariant("EF p")
