"""The paper's Sec. 3 running examples, end to end.

* the buggy Smoke-Alarm of Fig. 2(1b) — the alarm stops moments after it
  sounds,
* the Smoke-Alarm + Water-Leak-Detector interaction of Fig. 2(2) — the
  leak detector shuts off the fire sprinkler,
* the Thermostat-Energy-Control app — hard-coded setpoint on mode change
  (P.16) and threshold-guarded switch control (Fig. 7).
"""

import pytest

from repro import analyze_app, analyze_environment
from repro.mc import parse_ctl
from repro.mc.explicit import ExplicitChecker

SMOKE_ALARM_OK = '''
definition(name: "Smoke-Alarm")
preferences {
    section("Devices") {
        input "smoke_detector", "capability.smokeDetector", required: true
        input "the_alarm", "capability.alarm", required: true
        input "the_valve", "capability.valve", required: true
    }
}
def installed() { subscribe(smoke_detector, "smoke", smokeHandler) }
def smokeHandler(evt) {
    if (evt.value == "detected") {
        the_alarm.siren()
        the_valve.open()
    }
    if (evt.value == "clear") {
        the_alarm.off()
        the_valve.close()
    }
}
'''

# Fig. 2(1b): "the actual behavior of the app stops the sound moments
# after the alarm sounds (the state transition from S1 to S0)".
SMOKE_ALARM_BUGGY = '''
definition(name: "Smoke-Alarm-Buggy")
preferences {
    section("Devices") {
        input "smoke_detector", "capability.smokeDetector", required: true
        input "the_alarm", "capability.alarm", required: true
    }
}
def installed() { subscribe(smoke_detector, "smoke", smokeHandler) }
def smokeHandler(evt) {
    if (evt.value == "detected") {
        the_alarm.siren()
        the_alarm.off()
    }
}
'''

WATER_LEAK_DETECTOR = '''
definition(name: "Water-Leak-Detector")
preferences {
    section("Devices") {
        input "water_sensor", "capability.waterSensor", required: true
        input "the_valve", "capability.valve", required: true
    }
}
def installed() { subscribe(water_sensor, "water.wet", waterWetHandler) }
def waterWetHandler(evt) { the_valve.close() }
'''

THERMOSTAT_ENERGY_CONTROL = '''
definition(name: "Thermostat-Energy-Control")
preferences {
    section("Devices") {
        input "ther", "capability.thermostat", required: true
        input "the_lock", "capability.lock", required: true
        input "power_meter", "capability.powerMeter", required: true
        input "the_switch", "capability.switch", required: true
    }
}
def installed() { initialize() }
def initialize() {
    subscribe(location, "mode", modeChangeHandler)
    subscribe(power_meter, "power", powerHandler)
}
def modeChangeHandler(evt) {
    def temp = 68
    setTemp(temp)
    the_lock.lock()
}
def setTemp(t) { ther.setHeatingSetpoint(t) }
def powerHandler(evt) {
    def above_thrshld_val = 50
    def below_thrshld_val = 5
    def power_val = get_power()
    if (power_val > above_thrshld_val) { the_switch.off() }
    if (power_val < below_thrshld_val) { the_switch.on() }
}
def get_power() { return power_meter.currentValue("power") }
'''


class TestBuggySmokeAlarm:
    def test_correct_version_holds_p10(self):
        analysis = analyze_app(SMOKE_ALARM_OK)
        assert "P.10" in analysis.checked_properties
        assert not analysis.violations

    def test_buggy_version_flagged(self):
        """Fig. 2: 'does the alarm always sound when there is smoke?' —
        the buggy app silences the alarm on the same smoke-detected path
        (S.1 conflict + P.10 silencing-during-smoke)."""
        analysis = analyze_app(SMOKE_ALARM_BUGGY)
        assert {"S.1", "P.10"} <= analysis.violated_ids()


class TestSprinklerInteraction:
    def test_apps_clean_individually(self):
        assert not analyze_app(SMOKE_ALARM_OK).violations
        assert not analyze_app(WATER_LEAK_DETECTOR).violations

    def test_union_reveals_sprinkler_shutoff(self):
        """Fig. 2(2): 'the Water-Leak-Detector app shuts off the water
        valve and stops fire sprinklers when it detects water release from
        sprinklers' — with the valve shared, the union model reaches a
        state where smoke is present and the valve was driven closed."""
        env = analyze_environment([SMOKE_ALARM_OK, WATER_LEAK_DETECTOR])
        formula = parse_ctl(
            'AG !("attr:smoke_detector.smoke=detected" & '
            '"act:the_valve.valve=closed")'
        )
        result = ExplicitChecker(env.kripke).check(formula)
        assert not result.holds
        # And the same formula holds on the smoke alarm alone.
        solo = analyze_app(SMOKE_ALARM_OK)
        assert ExplicitChecker(solo.kripke).check(formula).holds


class TestThermostatEnergyControl:
    def test_power_states_partitioned_as_fig7(self):
        analysis = analyze_app(THERMOSTAT_ENERGY_CONTROL)
        domain = analysis.model.numeric_domains[("power_meter", "power")]
        labels = set(domain.labels())
        assert "power<5" in labels
        assert "power>50" in labels

    def test_setpoint_reduced_to_paper_states(self):
        """Sec. 4.2.1: 'the state space for temperature values is reduced
        from 45 to 2' — ours keeps the =68 point exact (3 regions)."""
        analysis = analyze_app(THERMOSTAT_ENERGY_CONTROL)
        domain = analysis.model.numeric_domains[("ther", "heatingSetpoint")]
        assert "heatingSetpoint=68" in domain.labels()
        assert domain.size() <= 3
        assert domain.raw_size == 46

    def test_hardcoded_setpoint_violates_p16(self):
        """P.16: mode-change thermostat setpoints must be user-entered;
        this app hard-codes 68F (developer-defined source)."""
        analysis = analyze_app(THERMOSTAT_ENERGY_CONTROL)
        assert "P.16" in analysis.violated_ids()

    def test_user_setpoint_variant_holds_p16(self):
        source = THERMOSTAT_ENERGY_CONTROL.replace(
            "def temp = 68", "def temp = user_temp"
        ).replace(
            'input "ther", "capability.thermostat", required: true',
            'input "ther", "capability.thermostat", required: true\n'
            '        input "user_temp", "number", required: true',
        )
        analysis = analyze_app(source)
        assert "P.16" not in analysis.violated_ids()

    def test_switch_guarded_by_power_thresholds(self):
        analysis = analyze_app(THERMOSTAT_ENERGY_CONTROL)
        model = analysis.model
        for t in model.transitions:
            power = model.value_in(t.target, "power_meter", "power")
            switch_writes = [
                a for a in t.actions if a.device == "the_switch"
            ]
            if power == "power>50" and switch_writes:
                assert switch_writes[0].value == "off"
            if power == "power<5" and switch_writes:
                assert switch_writes[0].value == "on"
