"""Service burst gate: 64 concurrent waiters on a 2-worker service.

The hardened service tier's acceptance scenario as a tracked number: 64
clients each POST a distinct SmartApp with ``?wait=`` against a
2-worker pool and a 16-slot waiter pool.  The run must complete under a
wall-clock ceiling with handler threads bounded — at most 16 waiters
ever parked at once (the rest degrade to polling) — and with the
runner-future registry empty afterwards (the PR 10 leak regression, at
benchmark scale).

Numbers land in ``BENCH_service.json`` at the repo root so the service
throughput trajectory is tracked across PRs alongside the fleet and
kernel numbers.  The ceiling can be tuned per runner via
``REPRO_SERVICE_BURST_CEILING`` (seconds).
"""

import json
import os
import threading
import time
import urllib.request

from repro.service.app import build_server

BURST = 64
WORKERS = 2
WAITER_SLOTS = 16
CEILING_SECONDS = float(os.environ.get("REPRO_SERVICE_BURST_CEILING", "120"))

APP_TEMPLATE = '''
definition(name: "Burst{index}")
preferences {{ section("s") {{
    input "ws", "capability.waterSensor"
    input "vd", "capability.valve"
}} }}
def installed() {{ subscribe(ws, "water.wet", h) }}
def h(evt) {{ vd.close() }}
'''


def test_service_64_waiter_burst(tmp_path, service_bench_json):
    server = build_server(
        host="127.0.0.1", port=0, pool="thread", jobs=WORKERS,
        max_pending=BURST, tenant_quota=BURST, max_waiters=WAITER_SLOTS,
        state_dir=tmp_path / "state", cache_dir=tmp_path / "cache",
    )
    service = server.service
    host, port = server.server_address[:2]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()

    def post_and_settle(index: int) -> dict:
        body = json.dumps(
            {"source": APP_TEMPLATE.format(index=index),
             "name": f"Burst{index}"}
        ).encode("utf-8")
        request = urllib.request.Request(
            f"http://{host}:{port}/v1/submissions?wait=60",
            data=body,
            headers={
                "Content-Type": "application/json",
                "X-Soteria-Tenant": "alpha" if index % 2 == 0 else "beta",
            },
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=CEILING_SECONDS) as r:
            job = json.loads(r.read())
        deadline = time.time() + CEILING_SECONDS
        while job["status"] not in ("done", "failed"):  # degraded waiters poll
            assert time.time() < deadline, job
            time.sleep(0.1)
            with urllib.request.urlopen(
                f"http://{host}:{port}/v1/jobs/{job['id']}", timeout=60
            ) as r:
                job = json.loads(r.read())
        return job

    results: list = [None] * BURST
    try:
        start = time.perf_counter()
        clients = [
            threading.Thread(
                target=lambda i=i: results.__setitem__(i, post_and_settle(i))
            )
            for i in range(BURST)
        ]
        for client in clients:
            client.start()
        for client in clients:
            client.join(timeout=CEILING_SECONDS)
            assert not client.is_alive(), "burst client never finished"
        elapsed = time.perf_counter() - start

        assert all(job is not None and job["status"] == "done" for job in results)
        stats = dict(service._wait_stats)
        payload = {
            "burst": BURST,
            "workers": WORKERS,
            "waiter_slots": WAITER_SLOTS,
            "elapsed_seconds": round(elapsed, 3),
            "jobs_per_second": round(BURST / elapsed, 2),
            "ceiling_seconds": CEILING_SECONDS,
            "waiters_peak": stats["peak"],
            "waits_parked": stats["waits"],
            "waits_degraded": stats["degraded"],
        }
        service_bench_json("waiter_burst_64x2", payload)
        print(
            f"\n64-waiter burst: {elapsed:.1f}s = {BURST / elapsed:,.1f} jobs/sec; "
            f"waiters peak {stats['peak']}/{WAITER_SLOTS}, "
            f"{stats['degraded']} degraded"
        )

        assert elapsed <= CEILING_SECONDS, (
            f"burst took {elapsed:.1f}s (ceiling {CEILING_SECONDS:.0f}s)"
        )
        # Bounded handler parking: never one parked thread per waiter.
        assert stats["peak"] <= WAITER_SLOTS
        # Settle-time pruning held at burst scale.
        assert service._futures == {}
        assert service._events == {}
    finally:
        service.shutdown()
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)
