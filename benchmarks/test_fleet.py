"""Fleet-scale screening gate: 100k households at >= 1,000 households/sec.

The fleet driver's whole premise is that canonical-form dedup makes the
screen cost a function of the *distinct* household population, not the
sampled count: the default profile pool (150 templates x 4 rename skins)
collapses 100,000 sampled households to 150 canonical checks, so the
sampling/bookkeeping loop dominates and throughput is tens of thousands
of households per second even on one core.  This benchmark gates both
halves of that claim —

* throughput: >= 1,000 households/sec over a 100k screen (the floor is
  deliberately ~4x below the measured rate on a single CI core, and can
  be tuned per runner via ``REPRO_FLEET_THROUGHPUT_FLOOR``);
* dedup: cache hit rate >= 95% (fresh checks / households <= 5%).

Numbers land in ``BENCH_fleet.json`` at the repo root so the screening
throughput trajectory is tracked across PRs alongside the BDD-kernel
numbers in ``BENCH_bdd_kernel.json``.
"""

import os
import time

from repro.fleet.driver import FleetOptions, run_fleet
from repro.fleet.profiles import FleetProfile

HOUSEHOLDS = 100_000
THROUGHPUT_FLOOR = float(os.environ.get("REPRO_FLEET_THROUGHPUT_FLOOR", "1000"))
HIT_RATE_FLOOR = 0.95


def test_fleet_screen_100k_households(fleet_bench_json):
    profile = FleetProfile(seed=0)
    start = time.perf_counter()
    result = run_fleet(profile, HOUSEHOLDS, FleetOptions(jobs=1))
    elapsed = time.perf_counter() - start

    telemetry = result.telemetry
    assert telemetry.households == HOUSEHOLDS
    throughput = HOUSEHOLDS / elapsed
    payload = {
        "households": HOUSEHOLDS,
        "elapsed_seconds": round(elapsed, 3),
        "households_per_second": round(throughput, 1),
        "throughput_floor": THROUGHPUT_FLOOR,
        "hit_rate": round(telemetry.hit_rate, 6),
        "byte_distinct": telemetry.byte_distinct,
        "canonical_distinct": telemetry.canonical_distinct,
        "fresh_checks": telemetry.fresh_checks,
        "violating_households": telemetry.violating_households,
        "blocklist_entries": len(result.blocklist["entries"]),
    }
    fleet_bench_json("fleet_100k", payload)
    print(
        f"\n100k screen: {elapsed:.1f}s = {throughput:,.0f} households/sec; "
        f"hit rate {telemetry.hit_rate:.2%} "
        f"({telemetry.fresh_checks} fresh checks over "
        f"{telemetry.canonical_distinct} canonical forms)"
    )

    assert throughput >= THROUGHPUT_FLOOR, (
        f"screen ran at {throughput:,.0f} households/sec "
        f"(floor {THROUGHPUT_FLOOR:,.0f})"
    )
    assert telemetry.hit_rate >= HIT_RATE_FLOOR, (
        f"cache hit rate {telemetry.hit_rate:.2%} below "
        f"{HIT_RATE_FLOOR:.0%}: dedup is not collapsing the fleet"
    )
    # Dedup sanity: the canonical tier must be no larger than the byte
    # tier, and the blocklist must cover every violating canonical form.
    assert telemetry.canonical_distinct <= telemetry.byte_distinct
    assert len(result.blocklist["entries"]) == telemetry.violating_distinct
