"""Fig. 11 (top) — state-reduction efficacy of property abstraction.

Paper: for the apps with numeric-valued device attributes (10 such devices,
14 apps granting access to them), abstraction "often results in order of
magnitude less number of states" (log-scale bars, before vs after).
"""

from repro.ir import build_ir
from repro.model import extract_model


def _numeric_apps(corpora):
    found = []
    for corpus in corpora:
        for app_id, app in corpus.items():
            ir = build_ir(app)
            model = extract_model(ir)
            if model.numeric_domains:
                found.append((app_id, model))
    return found


def test_fig11_top_state_reduction(benchmark, official_corpus, thirdparty_corpus):
    apps = benchmark.pedantic(
        _numeric_apps, args=([official_corpus, thirdparty_corpus],),
        rounds=1, iterations=1,
    )
    print("\nFig. 11 (top) — states before/after property abstraction:")
    print(f"  apps with numeric attributes: {len(apps)} (paper: 14)")
    reductions = []
    for app_id, model in apps:
        before = model.raw_state_count
        after = model.size()
        reductions.append(before / max(1, after))
        print(f"  {app_id:6s} before={before:>10d}  after={after:>4d}  "
              f"reduction={before / max(1, after):8.1f}x")

    assert len(apps) >= 10
    # "often results in order of magnitude less": the median reduction
    # must exceed 10x and every app must reduce.
    reductions.sort()
    median = reductions[len(reductions) // 2]
    print(f"  median reduction: {median:.0f}x")
    assert median >= 10
    assert all(r >= 1 for r in reductions)


def test_fig11_top_no_reduction_without_abstraction(benchmark, thirdparty_corpus):
    """Ablation: disabling abstraction keeps the raw numeric domains."""
    app = thirdparty_corpus["TP29"]  # battery watchdog: 0..100 battery

    def run():
        ir = build_ir(app)
        return (
            extract_model(ir, abstract_numeric=False).size(),
            extract_model(ir, abstract_numeric=True).size(),
        )

    raw, reduced = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nTP29 without abstraction: {raw} states; with: {reduced}")
    assert raw == 101
    assert reduced == 2
