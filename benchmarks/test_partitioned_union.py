"""Partitioned transition relations: the all-corpus union, end to end.

The paper's whole-deployment scenario taken to corpus scale: ONE union
environment containing all 82 evaluation apps (~2^115 domain-product
states, 89 shared attribute blocks, ~270 relation fragments).  The
monolithic relation encoding cannot even finish *encoding* this union
(every fragment's frame constraint mentions every variable block; the
fused disjunction explodes — measured: >10 minutes before timeout).
The partitioned encoding keeps the disjunctive fragment partition with
early quantification and no frames at all, and must check the whole
corpus under a wall-clock ceiling.

The crossover benchmark grows prefixes of the corpus through both
encodings and records where the partition overtakes the monolithic
relation, plus peak BDD node counts for both — the measured numbers
behind :data:`repro.model.encoder.PARTITION_FRAGMENT_THRESHOLD`.
"""

import os
import time

import pytest

from repro.corpus.batch import analyze_corpus
from repro.corpus.loader import app_ids
from repro.corpus.sweep import sweep_dataset
from repro.model.encoder import SymbolicUnionModel
from repro.model.union import build_union_skeleton, estimate_union_states
from repro.soteria import analyze_environment

#: Wall-clock ceiling for symbolically checking the full 82-app corpus
#: union.  Local runs finish in ~35 s; the ceiling leaves headroom for
#: slow CI hardware and can be widened via the environment.
ALL_CORPUS_CEILING_SECONDS = float(
    os.environ.get("REPRO_ALL_CORPUS_CEILING", "300")
)

#: Per-prefix encoding ceiling for the crossover measurement: the
#: monolithic side is abandoned (not failed) beyond it, because past the
#: crossover it rapidly needs minutes-to-hours.
CROSSOVER_ENCODE_CEILING_SECONDS = 20.0


@pytest.fixture(scope="module")
def corpus_models():
    analyses = analyze_corpus("all")
    ids = [a for ds in ("official", "thirdparty", "maliot") for a in app_ids(ds)]
    return [analyses[app_id].model for app_id in ids]


def test_all_corpus_union_checked_partitioned(benchmark, corpus_models, bench_json):
    analyses = analyze_corpus("all")
    ids = [a for ds in ("official", "thirdparty", "maliot") for a in app_ids(ds)]
    members = [analyses[app_id] for app_id in ids]
    estimate = estimate_union_states([m.model for m in members])
    assert estimate > 1 << 100          # astronomically past any budget

    start = time.perf_counter()
    environment = benchmark.pedantic(
        analyze_environment,
        args=(list(members),),
        kwargs={"backend": "symbolic", "encoding": "partitioned"},
        rounds=1,
        iterations=1,
    )
    elapsed = time.perf_counter() - start

    assert environment.backend == "symbolic"
    assert environment.encoding == "partitioned"
    assert environment.kripke is None
    assert environment.union_model.states == []
    assert elapsed < ALL_CORPUS_CEILING_SECONDS, (
        f"all-corpus check took {elapsed:.1f}s "
        f"(ceiling {ALL_CORPUS_CEILING_SECONDS:.0f}s)"
    )
    # The corpus-wide union must still surface the curated multi-app
    # ground truth (the MalIoT chains live inside it).
    violated = environment.violated_ids()
    assert {"P.3", "P.14"} <= violated
    assert environment.multi_app_violations()
    bench_json(
        "all_corpus_partitioned_check",
        {
            "apps": 82,
            "seconds": round(elapsed, 3),
            "kernel": environment.kernel,
            "peak_nodes": (environment.kernel_stats or {}).get("peak_nodes"),
            "violated_property_ids": sorted(violated),
        },
    )
    print(
        f"\n82-app union (~2^{estimate.bit_length() - 1} states) checked "
        f"in {elapsed:.1f}s; {len(violated)} property ids violated"
    )


def test_all_corpus_sweep_mode_has_no_failures(corpus_models):
    """`soteria sweep --all-corpus` semantics: one outcome, never failed."""
    outcomes = sweep_dataset("all", jobs=1, all_corpus=True, backend="symbolic")
    (outcome,) = outcomes
    assert len(outcome.group) == 82
    assert not outcome.failed
    assert outcome.environment.encoding == "partitioned"   # auto resolved
    assert outcome.violated_ids()


@pytest.mark.parametrize("size", [8, 16, 24, 40])
def test_partitioned_vs_monolithic_crossover(
    benchmark, corpus_models, size, bench_json
):
    """Encode the same corpus prefix both ways; record times and peak
    node counts.  Small unions favor the fused relation (images are one
    and_exists), wide unions are partition-only territory — the measured
    crossover is why ``auto`` switches at the fragment-count threshold."""
    skeleton = build_union_skeleton(corpus_models[:size])

    start = time.perf_counter()
    partitioned = benchmark.pedantic(
        SymbolicUnionModel,
        args=(skeleton,),
        kwargs={"encoding": "partitioned"},
        rounds=1,
        iterations=1,
    )
    partitioned_s = time.perf_counter() - start
    partitioned_peak = partitioned.bdd.allocated_nodes()

    monolithic_s = None
    monolithic_peak = None
    start = time.perf_counter()
    try:
        import signal

        class _Timeout(Exception):
            pass

        def _abort(signum, frame):
            raise _Timeout

        old = signal.signal(signal.SIGALRM, _abort)
        signal.alarm(int(CROSSOVER_ENCODE_CEILING_SECONDS))
        try:
            monolithic = SymbolicUnionModel(skeleton, encoding="monolithic")
            monolithic_s = time.perf_counter() - start
            monolithic_peak = monolithic.bdd.allocated_nodes()
        finally:
            signal.alarm(0)
            signal.signal(signal.SIGALRM, old)
    except _Timeout:
        pass

    fragments = len(partitioned.fragments)
    bench_json(
        f"crossover_{size}_apps",
        {
            "apps": size,
            "fragments": fragments,
            "partitioned": {
                "seconds": round(partitioned_s, 3),
                "peak_nodes": partitioned_peak,
            },
            "monolithic": (
                None
                if monolithic_s is None
                else {
                    "seconds": round(monolithic_s, 3),
                    "peak_nodes": monolithic_peak,
                }
            ),
        },
    )
    if monolithic_s is None:
        print(
            f"\n{size} apps / {fragments} fragments: partitioned "
            f"{partitioned_s:.2f}s (peak {partitioned_peak} nodes), "
            f"monolithic ABANDONED past {CROSSOVER_ENCODE_CEILING_SECONDS:.0f}s"
        )
        return
    assert monolithic.state_count() == partitioned.state_count()
    winner = "partitioned" if partitioned_s < monolithic_s else "monolithic"
    print(
        f"\n{size} apps / {fragments} fragments: partitioned "
        f"{partitioned_s:.2f}s (peak {partitioned_peak} nodes), monolithic "
        f"{monolithic_s:.2f}s (peak {monolithic_peak} nodes) -> {winner}"
    )
    if size >= 24:
        # Past the threshold neighborhood the partition must have won,
        # on both time and peak table size.
        assert partitioned_s < monolithic_s
        assert partitioned_peak < monolithic_peak
