"""Portfolio-backend gate: BMC answers shallow violations first.

The portfolio backend exists because a SAT query for a depth-k
counterexample does not pay the BDD backend's fixed costs — compiling
the full relation and iterating the reachability fixpoint — before it
can say *violated*.  This gate pins that claim on a known-violating
single app: end-to-end (engine construction + check), the incremental
BMC engine must answer ``AG !attr:valve_device.valve=closed`` on the
water-leak detector (O11, where the valve *does* close) faster than the
symbolic fixpoint does.

Numbers land in ``BENCH_portfolio.json`` at the repo root so the
SAT-vs-BDD latency trajectory is tracked across PRs alongside the
kernel and fleet benchmark files.
"""

import time

from repro.mc import parse_ctl
from repro.mc.portfolio import PortfolioChecker
from repro.mc.symbolic import SymbolicModelChecker
from repro.model.encoder import SymbolicUnionModel
from repro.model.union import build_union_skeleton

#: O11's valve closes on a wet sensor: this invariant is shallowly false.
FORMULA = "AG !attr:valve_device.valve=closed"
ROUNDS = 5


def _time(fn):
    best = None
    for _ in range(ROUNDS):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def test_bmc_answers_shallow_violation_faster_than_symbolic(
    official_analyses, portfolio_bench_json
):
    skeleton = build_union_skeleton([official_analyses["O11"].model])
    formula = parse_ctl(FORMULA)

    def run_bmc():
        checker = PortfolioChecker(skeleton, mode="bmc")
        result = checker.check(formula)
        assert checker.stats["bmc_violations"] == 1  # BMC, not fallback
        return result

    def run_symbolic():
        checker = SymbolicModelChecker(SymbolicUnionModel(skeleton))
        return checker.check(formula)

    bmc_seconds, bmc_result = _time(run_bmc)
    symbolic_seconds, symbolic_result = _time(run_symbolic)

    assert not bmc_result.holds and bmc_result.counterexample
    assert bmc_result.holds == symbolic_result.holds

    payload = {
        "app": "O11",
        "formula": FORMULA,
        "rounds": ROUNDS,
        "bmc_seconds": round(bmc_seconds, 6),
        "symbolic_seconds": round(symbolic_seconds, 6),
        "speedup": round(symbolic_seconds / bmc_seconds, 2),
        "counterexample_length": len(bmc_result.counterexample),
    }
    portfolio_bench_json("shallow_violation_latency", payload)
    print(
        f"\nO11 shallow violation: bmc {bmc_seconds * 1000:.2f} ms, "
        f"symbolic {symbolic_seconds * 1000:.2f} ms "
        f"({payload['speedup']}x)"
    )
    # The gate: the SAT path must win on a shallow counterexample.
    assert bmc_seconds < symbolic_seconds
