"""Table 3 — Soteria's results on individual apps.

Paper: nine third-party apps violate ten properties (TP1 P.13, TP2 P.12,
TP3 S.4, TP4 P.29, TP5 P.28, TP6 P.13+S.1, TP7 S.1, TP8 P.1, TP9 S.2);
none of the 35 official apps are flagged.
"""

from repro import analyze_app
from repro.corpus import groundtruth


def test_table3_thirdparty_rows(benchmark, thirdparty_corpus):
    def run():
        return {
            app_id: analyze_app(app).violated_ids()
            for app_id, app in thirdparty_corpus.items()
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    print("\nTable 3 — individual third-party apps (got vs paper):")
    for app_id, expected in sorted(
        groundtruth.TABLE3_INDIVIDUAL.items(), key=lambda kv: int(kv[0][2:])
    ):
        got = results[app_id]
        print(f"  {app_id:5s} got={sorted(got)}  paper={sorted(expected)}")
        assert got == expected, app_id

    flagged = {app_id for app_id, ids in results.items() if ids}
    assert flagged == set(groundtruth.TABLE3_INDIVIDUAL)
    pairs = sum(len(results[a]) for a in flagged)
    print(f"  => {len(flagged)} apps violating {pairs} properties "
          "(paper: 9 apps, 10 properties)")
    assert len(flagged) == 9
    assert pairs == 10


def test_table3_officials_unflagged(benchmark, official_corpus):
    def run():
        return {
            app_id: analyze_app(app).violated_ids()
            for app_id, app in official_corpus.items()
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    flagged = {app_id for app_id, ids in results.items() if ids}
    print(f"\nOfficial apps flagged: {sorted(flagged)} (paper: none)")
    assert not flagged
