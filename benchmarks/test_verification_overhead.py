"""Sec. 6.3 — property-verification overhead.

Paper: "The verification of a property took on the order of milliseconds
to perform since the SmartThings apps have comparatively smaller state
models than the large-scale ones found in other domains."

Measured across all three engines on the largest single-app model (O35,
180 states): explicit CTL, BDD-symbolic CTL, and SAT-based BMC.
"""

from repro.mc import parse_ctl
from repro.mc.bmc import BoundedChecker
from repro.mc.explicit import ExplicitChecker
from repro.mc.symbolic import SymbolicChecker

FORMULA = "AG (attr:the_alarm.alarm=siren -> EF attr:the_alarm.alarm=off)"


def test_explicit_ctl_verification(benchmark, official_analyses):
    kripke = official_analyses["O35"].kripke
    formula = parse_ctl(FORMULA)

    def run():
        return ExplicitChecker(kripke).check(formula).holds

    holds = benchmark(run)
    print(f"\nexplicit CTL on O35 ({len(kripke.states)} Kripke states): holds={holds}")


def test_symbolic_ctl_verification(benchmark, official_analyses):
    kripke = official_analyses["O35"].kripke
    formula = parse_ctl(FORMULA)
    checker = SymbolicChecker(kripke)  # relation built once, as NuSMV does

    holds = benchmark(checker.check, formula)
    print(f"\nBDD-symbolic CTL on O35: holds={holds}")


def test_bounded_model_checking(benchmark, official_analyses):
    kripke = official_analyses["O11"].kripke  # water-leak detector
    checker = BoundedChecker(kripke)
    formula = parse_ctl("AG !attr:valve_device.valve=closed")

    def run():
        return checker.check_invariant(formula, bound=4)

    verdict, trace = benchmark.pedantic(run, rounds=3, iterations=1)
    print(f"\nSAT BMC on O11: verdict={verdict.name} (counterexample length "
          f"{len(trace)})")
    assert not verdict  # the valve *does* close — good
    assert trace


def test_all_properties_over_market_model(benchmark, thirdparty_analyses):
    """Whole-catalog verification pass on one app, the paper's per-property
    milliseconds claim aggregated."""
    analysis = thirdparty_analyses["TP30"]  # 48 states, several properties

    def run():
        checker = ExplicitChecker(analysis.kripke)
        results = []
        for spec_id, checks in analysis.check_results.items():
            for result in checks:
                results.append(checker.check(result.formula).holds)
        return results

    results = benchmark(run)
    per_property_ms = (
        benchmark.stats.stats.mean / max(1, len(results)) * 1000
        if results
        else 0.0
    )
    print(f"\nTP30: {len(results)} property instance(s), "
          f"{per_property_ms:.2f} ms each (paper: order of milliseconds)")
