"""Appendix C — MalIoT test-suite results.

Paper (Sec. 6.2): Soteria correctly identifies 17 of the 20 unique
ground-truth violations across the 17 apps; it raises one false warning
(App5, call by reflection) and misses three violations that need dynamic
analysis or are outside the attacker model (App9, App10, App11).
"""

from repro import analyze_app, analyze_environment
from repro.corpus import groundtruth
from repro.corpus.loader import load_environment_sources


def test_maliot_full_suite(benchmark, maliot_corpus):
    def run():
        individual = {
            app_id: analyze_app(app).violations
            for app_id, app in maliot_corpus.items()
        }
        environments = {}
        for group, _prop in groundtruth.MALIOT_ENVIRONMENTS:
            env = analyze_environment(load_environment_sources(list(group)))
            member_ids = set()
            for analysis in env.analyses:
                member_ids |= analysis.violated_ids()
            environments[group] = [
                v
                for v in env.violations
                if len(v.apps) > 1 or v.property_id not in member_ids
            ]
        return individual, environments

    individual, environments = benchmark.pedantic(run, rounds=1, iterations=1)

    detected = 0
    false_positives = 0
    print("\nAppendix C — MalIoT results (got vs ground truth):")
    for entry in groundtruth.MALIOT_GROUND_TRUTH:
        violations = individual[entry.app_id]
        got = sorted({v.property_id for v in violations})
        if entry.result == "FP":
            if violations and all(v.via_reflection for v in violations):
                false_positives += 1
                print(f"  {entry.app_id:6s} got={got}  -> FALSE POSITIVE (as paper)")
            continue
        if not entry.detectable:
            print(f"  {entry.app_id:6s} got={got}  -> missed "
                  f"({'dynamic analysis' if entry.result == 'O' else 'out of scope'})")
            assert not violations
            continue
        if entry.environment:
            continue  # counted via environments below
        hits = {v.property_id for v in violations} & set(entry.violations)
        detected += len(hits)
        print(f"  {entry.app_id:6s} got={got}  want={sorted(set(entry.violations))}")
        assert hits == set(entry.violations)

    for (group, prop) in groundtruth.MALIOT_ENVIRONMENTS:
        found = [v for v in environments[group] if v.property_id == prop]
        per_app = 2 if prop == "P.14" else len(group)
        print(f"  {'+'.join(group):20s} -> {prop} x{len(found)}")
        assert found
        if prop == "P.3":
            detected += 3      # one violation attributed to each of App12-14
        elif prop == "S.1":
            detected += 1      # App15 (with App1)
        elif prop == "P.14":
            assert len(found) == 2
            detected += 4      # two devices, attributed to App16 and App17

    print(
        f"  => detected {detected}/{groundtruth.MALIOT_TOTAL_VIOLATIONS} "
        f"with {false_positives} false positive "
        "(paper: 17/20, 1 false positive)"
    )
    assert detected == groundtruth.MALIOT_DETECTED == 17
    assert false_positives == groundtruth.MALIOT_FALSE_POSITIVES == 1
