"""Cross-kernel benchmark: the array-backed fast core vs the reference
manager on the heaviest symbolic workload in the repo.

The workload is the all-corpus union check (82 apps, ~2^115 domain
product, partitioned relation encoding) — the same run ``soteria sweep
all --all-corpus --backend symbolic`` performs.  Both kernels check the
*same* cached union skeleton, so the measured difference is pure BDD
engine time: the fast kernel's flat (level, low, high) arrays,
packed-int tables, and persistent per-quantifier-mask computed caches
against the reference manager's dict-of-``_Node`` design.

The acceptance gate is a ≥3x speedup (reference baseline ~35-40 s, the
fast kernel ~12 s here); both wall clocks and both peak node counts are
recorded in ``BENCH_bdd_kernel.json`` for the cross-PR trajectory.
"""

import os
import time

from repro.corpus.batch import analyze_corpus
from repro.corpus.loader import app_ids
from repro.soteria import analyze_environment

#: Minimum fast-over-reference speedup on the all-corpus check.  The
#: measured ratio is ~3.3x; the floor can be lowered via the environment
#: for pathologically noisy CI hardware.
KERNEL_SPEEDUP_FLOOR = float(os.environ.get("REPRO_KERNEL_SPEEDUP_FLOOR", "3"))


def _all_corpus_members():
    analyses = analyze_corpus("all")
    ids = [a for ds in ("official", "thirdparty", "maliot") for a in app_ids(ds)]
    return [analyses[app_id] for app_id in ids]


def _timed_check(members, kernel):
    start = time.perf_counter()
    environment = analyze_environment(
        list(members),
        backend="symbolic",
        encoding="partitioned",
        kernel=kernel,
    )
    elapsed = time.perf_counter() - start
    assert environment.kernel == kernel
    assert environment.kernel_stats is not None
    return environment, elapsed


def test_fast_kernel_speedup_over_reference(bench_json):
    members = _all_corpus_members()

    reference, reference_s = _timed_check(members, "reference")
    fast, fast_s = _timed_check(members, "fast")

    # Equivalence first: a fast kernel that disagrees has no speedup to
    # brag about.  (The full per-formula differential lives in
    # tests/test_backends_differential.py; this is the last-line check
    # on the exact workload being timed.)
    assert fast.violated_ids() == reference.violated_ids()
    assert fast.checked_properties == reference.checked_properties

    speedup = reference_s / fast_s
    bench_json(
        "all_corpus_symbolic_check",
        {
            "workload": "82-app union, partitioned encoding, full check",
            "reference": {
                "seconds": round(reference_s, 3),
                "peak_nodes": reference.kernel_stats["peak_nodes"],
            },
            "fast": {
                "seconds": round(fast_s, 3),
                "peak_nodes": fast.kernel_stats["peak_nodes"],
            },
            "speedup": round(speedup, 2),
            "floor": KERNEL_SPEEDUP_FLOOR,
        },
    )
    print(
        f"\nall-corpus check: reference {reference_s:.1f}s "
        f"(peak {reference.kernel_stats['peak_nodes']} nodes), fast "
        f"{fast_s:.1f}s (peak {fast.kernel_stats['peak_nodes']} nodes) "
        f"-> {speedup:.2f}x"
    )
    assert speedup >= KERNEL_SPEEDUP_FLOOR, (
        f"fast kernel only {speedup:.2f}x over reference "
        f"(floor {KERNEL_SPEEDUP_FLOOR:.1f}x): reference {reference_s:.1f}s, "
        f"fast {fast_s:.1f}s"
    )


def test_kernel_stats_shapes_match(bench_json):
    """Both kernels report the same stats() schema on a small workload —
    the observability surface the CLI and /v1/stats render."""
    members = _all_corpus_members()[:6]
    snapshots = {}
    for kernel in ("reference", "fast"):
        environment, _elapsed = _timed_check(members, kernel)
        stats = environment.kernel_stats
        assert stats["kernel"] == kernel
        assert stats["peak_nodes"] >= stats["live_nodes"] >= 0
        assert stats["unique_entries"] >= 0
        assert stats["gc_runs"] >= 0 and stats["reorders"] >= 0
        snapshots[kernel] = stats
    assert snapshots["reference"].keys() == snapshots["fast"].keys()
    bench_json(
        "six_app_union_stats",
        {kernel: dict(stats) for kernel, stats in snapshots.items()},
    )
