"""Shared fixtures for the benchmark harness.

Heavy analyses are computed once per session through the corpus batch
driver (:mod:`repro.corpus.batch`), whose source-hash cache also shares
results with any other in-process sweep; the benchmark timers re-run only
the code under measurement.
"""

import pytest

from repro.corpus.batch import analyze_corpus
from repro.corpus.loader import load_corpus


@pytest.fixture(scope="session")
def official_corpus():
    return load_corpus("official")


@pytest.fixture(scope="session")
def thirdparty_corpus():
    return load_corpus("thirdparty")


@pytest.fixture(scope="session")
def maliot_corpus():
    return load_corpus("maliot")


@pytest.fixture(scope="session")
def official_analyses():
    return analyze_corpus("official")


@pytest.fixture(scope="session")
def thirdparty_analyses():
    return analyze_corpus("thirdparty")


@pytest.fixture(scope="session")
def maliot_analyses():
    return analyze_corpus("maliot")
