"""Shared fixtures for the benchmark harness.

Heavy analyses are computed once per session through the corpus batch
driver (:mod:`repro.corpus.batch`), whose source-hash cache also shares
results with any other in-process sweep; the benchmark timers re-run only
the code under measurement.
"""

import pytest

from repro.corpus.batch import analyze_corpus
from repro.corpus.loader import load_corpus


@pytest.fixture(scope="session")
def official_corpus():
    return load_corpus("official")


@pytest.fixture(scope="session")
def thirdparty_corpus():
    return load_corpus("thirdparty")


@pytest.fixture(scope="session")
def maliot_corpus():
    return load_corpus("maliot")


@pytest.fixture(scope="session")
def official_analyses():
    return analyze_corpus("official")


@pytest.fixture(scope="session")
def thirdparty_analyses():
    return analyze_corpus("thirdparty")


@pytest.fixture(scope="session")
def maliot_analyses():
    return analyze_corpus("maliot")


# ----------------------------------------------------------------------
# Machine-readable benchmark results: BENCH_<name>.json files at the repo
# root collect wall-clock + throughput numbers so the perf trajectory is
# tracked across PRs (BENCH_bdd_kernel.json for the kernel benchmarks,
# BENCH_fleet.json for the fleet-screening gate).
# ----------------------------------------------------------------------
import json
import threading
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON_PATH = _REPO_ROOT / "BENCH_bdd_kernel.json"
_bench_lock = threading.Lock()


def record_bench(section: str, payload: dict, path: Path | None = None) -> None:
    """Merge one benchmark's numbers into a ``BENCH_*.json`` file.

    ``path`` defaults to :data:`BENCH_JSON_PATH` (the BDD-kernel file).
    Sections are replaced wholesale (last run wins); unrelated sections
    written by other benchmark modules are preserved.
    """
    target = BENCH_JSON_PATH if path is None else path
    with _bench_lock:
        data: dict = {}
        if target.is_file():
            try:
                data = json.loads(target.read_text(encoding="utf-8"))
            except ValueError:
                data = {}
        data[section] = payload
        target.write_text(
            json.dumps(data, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )


@pytest.fixture(scope="session")
def bench_json():
    """The section writer for ``BENCH_bdd_kernel.json``."""
    return record_bench


@pytest.fixture(scope="session")
def fleet_bench_json():
    """The section writer for ``BENCH_fleet.json``."""

    def _record(section: str, payload: dict) -> None:
        record_bench(section, payload, path=_REPO_ROOT / "BENCH_fleet.json")

    return _record


@pytest.fixture(scope="session")
def portfolio_bench_json():
    """The section writer for ``BENCH_portfolio.json``."""

    def _record(section: str, payload: dict) -> None:
        record_bench(
            section, payload, path=_REPO_ROOT / "BENCH_portfolio.json"
        )

    return _record


@pytest.fixture(scope="session")
def service_bench_json():
    """The section writer for ``BENCH_service.json``."""

    def _record(section: str, payload: dict) -> None:
        record_bench(section, payload, path=_REPO_ROOT / "BENCH_service.json")

    return _record
