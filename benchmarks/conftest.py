"""Shared fixtures for the benchmark harness.

Heavy analyses are computed once per session through the corpus batch
driver (:mod:`repro.corpus.batch`), whose source-hash cache also shares
results with any other in-process sweep; the benchmark timers re-run only
the code under measurement.
"""

import pytest

from repro.corpus.batch import analyze_corpus
from repro.corpus.loader import load_corpus


@pytest.fixture(scope="session")
def official_corpus():
    return load_corpus("official")


@pytest.fixture(scope="session")
def thirdparty_corpus():
    return load_corpus("thirdparty")


@pytest.fixture(scope="session")
def maliot_corpus():
    return load_corpus("maliot")


@pytest.fixture(scope="session")
def official_analyses():
    return analyze_corpus("official")


@pytest.fixture(scope="session")
def thirdparty_analyses():
    return analyze_corpus("thirdparty")


@pytest.fixture(scope="session")
def maliot_analyses():
    return analyze_corpus("maliot")


# ----------------------------------------------------------------------
# Machine-readable benchmark results: BENCH_bdd_kernel.json at the repo
# root collects wall-clock + peak-node numbers so the perf trajectory of
# the BDD kernels is tracked across PRs.
# ----------------------------------------------------------------------
import json
import threading
from pathlib import Path

BENCH_JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_bdd_kernel.json"
_bench_lock = threading.Lock()


def record_bench(section: str, payload: dict) -> None:
    """Merge one benchmark's numbers into ``BENCH_bdd_kernel.json``.

    Sections are replaced wholesale (last run wins); unrelated sections
    written by other benchmark modules are preserved.
    """
    with _bench_lock:
        data: dict = {}
        if BENCH_JSON_PATH.is_file():
            try:
                data = json.loads(BENCH_JSON_PATH.read_text(encoding="utf-8"))
            except ValueError:
                data = {}
        data[section] = payload
        BENCH_JSON_PATH.write_text(
            json.dumps(data, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )


@pytest.fixture(scope="session")
def bench_json():
    """The section writer for ``BENCH_bdd_kernel.json``."""
    return record_bench
