"""Shared fixtures for the benchmark harness.

Heavy analyses are computed once per session and reused across benches;
the benchmark timers re-run only the code under measurement.
"""

import pytest

from repro import analyze_app
from repro.corpus.loader import load_corpus


@pytest.fixture(scope="session")
def official_corpus():
    return load_corpus("official")


@pytest.fixture(scope="session")
def thirdparty_corpus():
    return load_corpus("thirdparty")


@pytest.fixture(scope="session")
def maliot_corpus():
    return load_corpus("maliot")


@pytest.fixture(scope="session")
def official_analyses(official_corpus):
    return {app_id: analyze_app(app) for app_id, app in official_corpus.items()}


@pytest.fixture(scope="session")
def thirdparty_analyses(thirdparty_corpus):
    return {app_id: analyze_app(app) for app_id, app in thirdparty_corpus.items()}


@pytest.fixture(scope="session")
def maliot_analyses(maliot_corpus):
    return {app_id: analyze_app(app) for app_id, app in maliot_corpus.items()}
