"""Ablation benches for the design choices DESIGN.md calls out.

Not a paper artifact — these quantify the paper's three anti-explosion
measures on this reproduction: ESP path merging (Sec. 4.2.2), infeasible-
path pruning (Sec. 4.2.1), and property abstraction (Sec. 4.2.1).
"""

from repro.analysis.symexec import SymbolicExecutor
from repro.ir import build_ir
from repro.model import extract_model
from repro.model.extractor import ModelExtractor
from repro.platform.smartapp import SmartApp

BRANCHY = '''
definition(name: "Branchy")
preferences { section("s") {
    input "pm", "capability.powerMeter"
    input "sw", "capability.switch"
} }
def installed() { subscribe(pm, "power", h) }
def h(evt) {
    def v = pm.currentValue("power")
    if (v > 10) { log.debug "a" } else { log.debug "b" }
    if (v > 20) { log.debug "c" } else { log.debug "d" }
    if (v > 30) { log.debug "e" } else { log.debug "f" }
    if (v > 40) { log.debug "g" } else { log.debug "h" }
    if (v > 50) { sw.off() }
    if (v < 5) { sw.on() }
}
'''


def _paths(merge: bool, prune: bool) -> int:
    ir = build_ir(SmartApp.from_source(BRANCHY))
    executor = SymbolicExecutor(ir, merge_paths=merge, prune_infeasible=prune)
    rules = executor.run_all()
    return sum(len(s) for s in rules.values())


def test_ablation_esp_merging(benchmark):
    merged = benchmark.pedantic(_paths, args=(True, True), rounds=3, iterations=1)
    unmerged = _paths(False, True)
    print(f"\npaths with ESP merging: {merged}; without: {unmerged}")
    assert merged < unmerged  # merging collapses the log-only diamonds


def test_ablation_infeasible_pruning(benchmark):
    pruned = benchmark.pedantic(_paths, args=(True, True), rounds=3, iterations=1)
    unpruned = _paths(True, False)
    print(f"\npaths with pruning: {pruned}; without: {unpruned}")
    assert pruned <= unpruned  # v>50 && v<5 combinations disappear


BATTERY_APP = '''
definition(name: "BatteryGuard")
preferences { section("s") {
    input "bat", "capability.battery"
    input "sw", "capability.switch"
} }
def installed() { subscribe(bat, "battery", h) }
def h(evt) {
    if (bat.currentValue("battery") < 15) { sw.on() }
}
'''


def test_ablation_property_abstraction(benchmark):
    # A battery-scale domain (0..100): concrete enough to enumerate raw.
    ir = build_ir(SmartApp.from_source(BATTERY_APP))

    def run():
        return extract_model(ir, abstract_numeric=True).size()

    reduced = benchmark.pedantic(run, rounds=3, iterations=1)
    raw = ModelExtractor(ir, abstract_numeric=False).extract().size()
    print(f"\nstates with abstraction: {reduced}; without: {raw}")
    assert raw / reduced > 10
