"""Disk-backed cache: a warm cross-process corpus sweep is >= 5x faster.

The in-memory cache of ``repro.corpus.batch`` dies with the process; the
disk cache is what makes the *second invocation* of a benchmark script, a
CI job, or a CLI run near-instant.  Here the full 82-app sweep runs in
fresh interpreter processes against one cache directory: the first (cold)
run analyzes everything and persists it, the following (warm) runs only
unpickle.  Timing happens inside the child around the ``analyze_corpus``
call, so constant interpreter/import start-up — identical in both runs and
untouched by caching — does not dilute the measured ratio.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

_CHILD = """
import json, time
from repro.corpus.batch import analyze_corpus, cache_info

start = time.perf_counter()
results = analyze_corpus("all", jobs=1, cache_dir={cache_dir!r})
elapsed = time.perf_counter() - start
assert len(results) == 82, len(results)
print(json.dumps({{"elapsed": elapsed, "info": cache_info()}}))
"""


def _sweep_in_fresh_process(cache_dir: Path) -> dict:
    env = dict(os.environ, PYTHONPATH=str(Path(__file__).resolve().parents[1] / "src"))
    env.pop("REPRO_BATCH_JOBS", None)
    proc = subprocess.run(
        [sys.executable, "-c", _CHILD.format(cache_dir=str(cache_dir))],
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stderr
    return json.loads(proc.stdout.strip().splitlines()[-1])


def _measure_ratio(cache_dir: Path) -> tuple[float, str]:
    cold = _sweep_in_fresh_process(cache_dir)
    warm = [_sweep_in_fresh_process(cache_dir) for _ in range(2)]

    assert cold["info"]["misses"] == 82
    for run in warm:
        assert run["info"]["disk_hits"] == 82
        assert run["info"]["misses"] == 0

    best_warm = min(run["elapsed"] for run in warm)
    warm_times = ", ".join(f"{run['elapsed']:.3f}s" for run in warm)
    ratio = cold["elapsed"] / best_warm
    return ratio, (
        f"cold 82-app sweep: {cold['elapsed']:.3f}s; "
        f"warm: {warm_times}; speedup {ratio:.1f}x"
    )


def test_warm_corpus_sweep_is_5x_faster(tmp_path):
    ratio, report = _measure_ratio(tmp_path / "first")
    if ratio < 5.0:
        # One re-measurement before declaring failure: a loaded CI runner
        # can squeeze a single cold/warm sample below threshold without
        # any caching defect (typical healthy ratio is ~9x).
        ratio, retry_report = _measure_ratio(tmp_path / "retry")
        report = f"{report}; retried: {retry_report}"
    print(f"\n{report}")
    assert ratio >= 5.0, f"warm sweep only {ratio:.1f}x faster"
