"""Fig. 11 (bottom) — state-model extraction overhead vs model size.

Paper: extraction time grows with the number of states (avg 17.3 s at 180
states on the authors' 2-core laptop + JVM; our substrate is pure Python on
different hardware, so only the *shape* — monotone growth, seconds at the
high end at most — is expected to match).  The measured time covers IR
extraction, state-model generation, the DOT rendering, and the SMV text,
matching the paper's accounting.
"""

import time

from repro.ir import build_ir
from repro.model import extract_model
from repro.platform.smartapp import SmartApp
from repro.reporting import to_dot, to_smv


def _full_extraction(app: SmartApp):
    ir = build_ir(app)
    model = extract_model(ir)
    to_dot(model)
    to_smv(model)
    return model


def test_fig11_bottom_time_vs_states(benchmark, official_corpus, thirdparty_corpus):
    corpus = {**official_corpus, **thirdparty_corpus}

    def run():
        series = []
        for app_id, app in corpus.items():
            start = time.perf_counter()
            model = _full_extraction(app)
            elapsed = time.perf_counter() - start
            series.append((model.size(), elapsed, app_id))
        series.sort()
        return series

    series = benchmark.pedantic(run, rounds=1, iterations=1)

    print("\nFig. 11 (bottom) — avg extraction time per state-count bucket:")
    buckets: dict[int, list[float]] = {}
    for states, elapsed, _app in series:
        bucket = 1
        while bucket < states:
            bucket *= 2
        buckets.setdefault(bucket, []).append(elapsed)
    for bucket in sorted(buckets):
        times = buckets[bucket]
        print(f"  <= {bucket:4d} states: {sum(times) / len(times) * 1000:8.1f} ms "
              f"({len(times)} apps)")

    largest = series[-1]
    smallest = series[0]
    print(f"  largest model: {largest[2]} ({largest[0]} states) "
          f"in {largest[1] * 1000:.1f} ms")
    # Shape: the biggest model must not be faster than the smallest, and
    # even the 180-state model stays within seconds (paper: 17.3 s avg).
    assert largest[1] >= smallest[1]
    assert largest[1] < 30.0


def test_extraction_time_for_max_model(benchmark, official_corpus):
    app = official_corpus["O35"]  # 180 states — the paper's largest
    model = benchmark(_full_extraction, app)
    assert model.size() == 180
