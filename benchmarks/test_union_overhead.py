"""Sec. 6.3 — union-model construction time in multi-app environments.

Paper: the graph-union algorithm over 30 interacting apps (avg 64 states,
six state attributes) takes 4 +/- 2.1 seconds.  Here the three Table 4
groups are unioned and timed; the shape expected is seconds at most.
"""

import pytest

from repro import analyze_app
from repro.corpus import groundtruth
from repro.corpus.loader import load_environment_sources
from repro.model import build_union_model


@pytest.mark.parametrize(
    "group", groundtruth.TABLE4_GROUPS, ids=lambda g: g.group_id
)
def test_union_construction(benchmark, group):
    models = [
        analyze_app(app).model
        for app in load_environment_sources(list(group.apps))
    ]

    union = benchmark(build_union_model, models)
    attrs = len(union.attributes)
    print(
        f"\n{group.group_id}: union of {len(models)} apps -> "
        f"{union.size()} states / {attrs} attributes / "
        f"{len(union.transitions)} transitions"
    )
    assert union.size() >= max(m.size() for m in models)


def test_union_of_all_interacting_apps(benchmark):
    """All Table 4 apps in one environment (the paper's 30-app sweep
    analogue): still constructable in seconds."""
    app_ids = []
    for group in groundtruth.TABLE4_GROUPS:
        for app_id in group.apps:
            if app_id not in app_ids:
                app_ids.append(app_id)
    models = [
        analyze_app(app).model for app in load_environment_sources(app_ids)
    ]

    union = benchmark.pedantic(
        build_union_model, args=(models,), kwargs={"max_states": 2_000_000},
        rounds=1, iterations=1,
    )
    print(
        f"\nunion of {len(models)} interacting apps: "
        f"{union.size()} states, {len(union.attributes)} attributes"
    )
    assert len(models) == 16  # TP3 shared between G.2 and G.3
