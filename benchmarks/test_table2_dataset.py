"""Table 2 — description of analyzed official and third-party apps.

Paper row (Official): 35 apps, 14 unique devices, avg/max states 36/180,
avg/max LoC 220/2633.  Paper row (Third-party): 30 apps, 18 unique devices,
avg/max states 32/96, avg/max LoC 246/1360.

Absolute LoC differs (our reconstructions are leaner than market apps);
the *shape* that must hold: 35/30 apps, tens of unique device types,
average tens of states with maxima 180/96 after reduction.
"""

from repro.ir import build_ir


def _dataset_row(analyses, corpus):
    states = [a.model.size() for a in analyses.values()]
    locs = [app.loc() for app in corpus.values()]
    devices = set()
    for app in corpus.values():
        devices |= build_ir(app).capabilities_used()
    return {
        "apps": len(analyses),
        "unique_devices": len(devices),
        "avg_states": sum(states) / len(states),
        "max_states": max(states),
        "avg_loc": sum(locs) / len(locs),
        "max_loc": max(locs),
    }


def test_table2_official(benchmark, official_analyses, official_corpus):
    row = benchmark.pedantic(
        _dataset_row,
        args=(official_analyses, official_corpus),
        rounds=3,
        iterations=1,
    )
    print(
        "\nTable 2 / Official:  "
        f"apps={row['apps']} unique-devices={row['unique_devices']} "
        f"states avg/max={row['avg_states']:.0f}/{row['max_states']} "
        f"LoC avg/max={row['avg_loc']:.0f}/{row['max_loc']} "
        "(paper: 35 apps, 14 devices, 36/180 states, 220/2633 LoC)"
    )
    assert row["apps"] == 35
    assert row["max_states"] == 180          # paper's post-reduction max
    assert 4 <= row["avg_states"] <= 80      # tens of states on average
    assert row["unique_devices"] >= 10


def test_table2_thirdparty(benchmark, thirdparty_analyses, thirdparty_corpus):
    row = benchmark.pedantic(
        _dataset_row,
        args=(thirdparty_analyses, thirdparty_corpus),
        rounds=3,
        iterations=1,
    )
    print(
        "\nTable 2 / Third-party:  "
        f"apps={row['apps']} unique-devices={row['unique_devices']} "
        f"states avg/max={row['avg_states']:.0f}/{row['max_states']} "
        f"LoC avg/max={row['avg_loc']:.0f}/{row['max_loc']} "
        "(paper: 30 apps, 18 devices, 32/96 states, 246/1360 LoC)"
    )
    assert row["apps"] == 30
    assert row["max_states"] == 96           # paper's third-party max
    assert 4 <= row["avg_states"] <= 80
    assert row["unique_devices"] >= 10
