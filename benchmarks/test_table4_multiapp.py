"""Table 4 — Soteria's results in multi-app environments.

Paper: three groups of apps working in concert violate 11 properties:
G.1 = {O3, O4, O8, TP12}            -> S.1, S.2, S.3
G.2 = {O14, O9, O16, TP3, TP2}      -> S.2, S.4
G.3 = {O7, TP3, O30, TP21, O31,
       TP22, O12, TP19}             -> P.12, P.13, P.14, P.17, S.1, S.2

The per-group benchmark runs ``analyze_environment`` from sources (the
paper's workflow); the headline-totals benchmark goes through the sweep
engine, whose cached per-app analyses are exactly how the corpus-scale
sweeps reproduce these numbers without re-parsing.
"""

import pytest

from repro import analyze_environment
from repro.corpus import groundtruth
from repro.corpus.loader import load_environment_sources
from repro.corpus.sweep import environment_only_ids, sweep_environments


@pytest.mark.parametrize(
    "group", groundtruth.TABLE4_GROUPS, ids=lambda g: g.group_id
)
def test_table4_group(benchmark, group):
    def run():
        env = analyze_environment(load_environment_sources(list(group.apps)))
        return env, environment_only_ids(env)

    env, got = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"\nTable 4 {group.group_id} ({', '.join(group.apps)}): "
        f"union={env.union_model.size()} states; "
        f"got={sorted(got)} paper={sorted(group.violated)}"
    )
    missing = set(group.violated) - got
    assert not missing, f"{group.group_id} missing {missing}"
    extra = got - set(group.violated)
    if extra:
        print(f"  note: extra findings {sorted(extra)} "
              "(see EXPERIMENTS.md — sound over-approximation)")


def test_table4_headline_totals(benchmark):
    def run():
        outcomes = sweep_environments(
            [group.apps for group in groundtruth.TABLE4_GROUPS], jobs=1
        )
        return {
            group.group_id: environment_only_ids(outcome.environment)
            & set(group.violated)
            for group, outcome in zip(groundtruth.TABLE4_GROUPS, outcomes)
        }

    per_group = benchmark.pedantic(run, rounds=1, iterations=1)
    apps = sum(len(g.apps) for g in groundtruth.TABLE4_GROUPS)
    properties = sum(len(ids) for ids in per_group.values())
    print(
        f"\nTable 4 totals: {len(per_group)} groups, {apps} apps, "
        f"{properties} paper properties confirmed "
        "(paper: 3 groups, 17 apps, 11 properties)"
    )
    assert len(per_group) == 3
    assert apps == 17
    assert properties == 11
