"""Symbolic union checking: the 13-app MalIoT cluster, end to end.

The paper's scalability claim is that multi-app verification survives
realistic co-installations.  The corpus-enumerated MalIoT interaction
cluster — 13 apps, ~82 944 union states — used to be *skipped* by the
sweep for blowing the explicit state budget.  The symbolic backend
(:mod:`repro.model.encoder` + :class:`repro.mc.symbolic.SymbolicModelChecker`)
must check it outright, under a wall-clock ceiling, and reproduce the
multi-app ground truth (Appendix C) inside the cluster.

The crossover benchmark grows prefixes of the cluster through both
backends and records where symbolic checking overtakes explicit — on this
corpus the explicit checker falls behind by ~1 000 union states and is
thousands of times slower by 20 000, which is exactly why ``auto``
switches at the old budget.
"""

import os
import time

import pytest

from repro.corpus.sweep import groups_sharing_devices, sweep_environments
from repro.model.union import estimate_union_states
from repro.soteria import analyze_environment

#: Wall-clock ceiling for symbolically checking the full 13-app cluster.
#: Local runs finish in ~3 s; the ceiling leaves headroom for slow CI
#: hardware and can be widened via the environment for constrained boxes.
SYMBOLIC_CEILING_SECONDS = float(
    os.environ.get("REPRO_SYMBOLIC_CEILING", "120")
)

#: Explicit checking is only timed on prefixes whose product stays small;
#: beyond this it takes minutes and proves nothing new.
EXPLICIT_CROSSOVER_BUDGET = 15_000


def _cluster_ids():
    groups = groups_sharing_devices("maliot")
    return max(groups, key=len)


def test_maliot_cluster_checked_symbolically(benchmark, maliot_analyses):
    ids = _cluster_ids()
    assert len(ids) == 13
    members = [maliot_analyses[app_id] for app_id in ids]
    assert estimate_union_states([a.model for a in members]) == 82_944

    start = time.perf_counter()
    environment = benchmark.pedantic(
        analyze_environment,
        args=(list(members),),
        kwargs={"backend": "symbolic"},
        rounds=1,
        iterations=1,
    )
    elapsed = time.perf_counter() - start

    assert environment.backend == "symbolic"
    assert environment.kripke is None        # product never materialized
    assert environment.union_model.states == []
    assert elapsed < SYMBOLIC_CEILING_SECONDS, (
        f"symbolic check took {elapsed:.1f}s "
        f"(ceiling {SYMBOLIC_CEILING_SECONDS:.0f}s)"
    )

    # The co-installation ground truth (Appendix C) inside the cluster:
    # the App12-14 smoke/lock chain and App16+App17's mode-triggered
    # critical-switch kills on both devices.
    violated = environment.violated_ids()
    assert "P.3" in violated
    p14_devices = {
        v.devices for v in environment.violations if v.property_id == "P.14"
    }
    assert len(p14_devices) >= 2
    print(
        f"\n13-app cluster: 82944 states checked symbolically in "
        f"{elapsed:.2f}s; violations: {', '.join(sorted(violated))}"
    )


def test_maliot_sweep_has_zero_skipped_outcomes(maliot_analyses):
    """`soteria sweep maliot` semantics: every candidate group is checked
    — the cluster the old budget skipped included."""
    outcomes = sweep_environments(groups_sharing_devices("maliot"), jobs=1)
    assert outcomes, "no candidate groups enumerated"
    assert not any(o.failed for o in outcomes)
    cluster = next(o for o in outcomes if len(o.group) == 13)
    assert cluster.backend == "symbolic"
    assert cluster.violated_ids()


@pytest.mark.parametrize("size", [2, 4, 6, 8])
def test_explicit_vs_symbolic_crossover(benchmark, maliot_analyses, size):
    """Record the crossover: same prefix of the cluster through both
    backends.  Symbolic pays a fixed encoding cost that dominates on tiny
    unions and amortizes to orders of magnitude past the old budget."""
    ids = _cluster_ids()[:size]
    members = [maliot_analyses[app_id] for app_id in ids]
    estimate = estimate_union_states([a.model for a in members])
    if estimate > EXPLICIT_CROSSOVER_BUDGET:
        pytest.skip(f"explicit side infeasible at {estimate} states")

    start = time.perf_counter()
    explicit = analyze_environment(
        list(members), backend="explicit", max_union_states=EXPLICIT_CROSSOVER_BUDGET
    )
    explicit_s = time.perf_counter() - start

    start = time.perf_counter()
    symbolic = benchmark.pedantic(
        analyze_environment,
        args=(list(members),),
        kwargs={"backend": "symbolic"},
        rounds=1,
        iterations=1,
    )
    symbolic_s = time.perf_counter() - start

    assert explicit.violated_ids() == symbolic.violated_ids()
    faster = "symbolic" if symbolic_s < explicit_s else "explicit"
    print(
        f"\n{size} apps / {estimate} states: explicit {explicit_s:.2f}s, "
        f"symbolic {symbolic_s:.2f}s -> {faster} wins"
    )
    if estimate >= 10_000:
        # Past the old budget the symbolic backend must have crossed over.
        assert symbolic_s < explicit_s
