#!/usr/bin/env python3
"""Scan the bundled MalIoT corpus (the paper's Sec. 6.2 study).

Analyzes all 17 MalIoT apps plus the three multi-app environments and
prints a per-app verdict table in the format of Appendix C, flagging the
reflection-induced false positive on App5.

Run:  python examples/maliot_scan.py
"""

from repro import analyze_environment
from repro.corpus import groundtruth
from repro.corpus.batch import analyze_corpus
from repro.corpus.loader import load_environment_sources


def main() -> None:
    analyses = analyze_corpus("maliot")
    print(f"{'App':7s} {'states':>6s}  {'verdict'}")
    print("-" * 60)
    for entry in groundtruth.MALIOT_GROUND_TRUTH:
        analysis = analyses[entry.app_id]
        ids = sorted(analysis.violated_ids())
        if not ids:
            if entry.app_id == "App10" and analysis.ir.has_dynamic_preferences:
                verdict = "out of scope (dynamic device permissions)"
            elif entry.app_id == "App11" and analysis.ir.sink_calls:
                verdict = "out of scope (sensitive data leak)"
            elif entry.environment:
                verdict = f"clean alone (see environment with {', '.join(entry.environment)})"
            elif not entry.detectable:
                verdict = "missed — requires dynamic analysis"
            else:
                verdict = "clean"
        else:
            reflective = all(v.via_reflection for v in analysis.violations)
            tag = " [via reflection — false positive]" if reflective else ""
            verdict = f"VIOLATES {', '.join(ids)}{tag}"
        print(f"{entry.app_id:7s} {analysis.model.size():6d}  {verdict}")

    print()
    print("Multi-app MalIoT environments:")
    print("-" * 60)
    for group, expected in groundtruth.MALIOT_ENVIRONMENTS:
        environment = analyze_environment(load_environment_sources(list(group)))
        member_ids = set()
        for member in environment.analyses:
            member_ids |= member.violated_ids()
        fresh = sorted(
            {
                violation.property_id
                for violation in environment.violations
                if len(violation.apps) > 1
                or violation.property_id not in member_ids
            }
        )
        print(f"{' + '.join(group):24s} -> {', '.join(fresh)} (expected {expected})")


if __name__ == "__main__":
    main()
