#!/usr/bin/env python3
"""Scenario generation and differential fuzzing beyond the 82-app corpus.

The paper's evaluation stops at the hand-collected apps; the scenario
generator does not.  This script

1. synthesizes a few scenario apps from seeds — including one with a
   violation template injected (violating by construction),
2. generates a device-sharing *cluster* and shows the sweep engine
   recovering it as a candidate co-installation,
3. runs a short differential fuzz campaign: every generated environment
   is checked on both union backends (explicit Kripke vs symbolic BDD)
   and every injected violation must be flagged by its matching
   property.

Run:  python examples/fuzz_campaign.py
"""

from repro import analyze_app
from repro.corpus.fuzz import run_fuzz
from repro.corpus.loader import register_app
from repro.corpus.sweep import groups_sharing_devices
from repro.gen import generate_app, generate_cluster

# ----------------------------------------------------------------------
# 1. Deterministic scenario apps: same seed, same bytes.
# ----------------------------------------------------------------------
print("== generated scenario app (seed 0, index 1)")
app = generate_app(0, 1, inject=True)
print(app.source)
print(f"fragments: {', '.join(app.fragments)}")
print(f"injected violation: {app.injected[0]}")

analysis = analyze_app(app.source, name=app.app_id)
flagged = sorted(analysis.violated_ids())
print(f"analysis flags: {', '.join(flagged)}  "
      f"(metamorphic oracle: {app.injected[0]} must be in there)\n")
assert app.injected[0] in analysis.violated_ids()
assert generate_app(0, 1, inject=True).source == app.source  # byte-identical

# ----------------------------------------------------------------------
# 2. A generated cluster joins the sweep machinery like corpus apps.
# ----------------------------------------------------------------------
print("== generated device-sharing cluster")
cluster = generate_cluster(0, 2, id_prefix="GenExample")
for member in cluster:
    register_app(member.app_id, member.source)
    shared = ", ".join(member.shared_handles) or "-"
    print(f"  {member.app_id}: devices {sorted(member.devices)} "
          f"(shared: {shared})")
ids = [member.app_id for member in cluster]
components = groups_sharing_devices(ids)
print(f"sweep enumeration recovers: {components}\n")
assert components == [tuple(ids)]

# ----------------------------------------------------------------------
# 3. A short differential campaign (the CI budget is 25 cases).
# ----------------------------------------------------------------------
print("== differential fuzz campaign (seed 0, 10 cases)")
report = run_fuzz(seed=0, count=10, jobs=2)
for result in report.results:
    inject = f" inject={','.join(result.injected)}" if result.injected else ""
    print(f"  case {result.index}: {result.kind:7s} "
          f"union {result.state_estimate:4d} states{inject}  "
          f"{result.status.upper()}")
print(f"\nbackends agreed on every case: {report.ok}")
print(f"injected violations detected: {report.detected_total()}"
      f"/{report.injected_total()} ({report.detection_rate():.0%})")
