#!/usr/bin/env python3
"""Multi-app environment audit: the paper's Sec. 4.4 interaction chain.

Three apps, each individually safe, are installed together:

* Smoke-Lights  — turns the light switch on when smoke is detected,
* Switch-Mode   — marks the house "home" when that switch turns on,
* Home-Lock     — locks the front door whenever the mode becomes "home".

Together they violate P.3 ("when there is smoke, the door must be
unlocked"): smoke -> switch on -> home mode -> door locked, trapping the
occupants.  Soteria finds the chain by model checking the Algorithm-2
union model.

Run:  python examples/smart_home_audit.py
"""

from repro import analyze_app, analyze_environment
from repro.corpus.batch import analyze_corpus
from repro.reporting import render_report

SMOKE_LIGHTS = """
definition(name: "Smoke Lights", description: "Lights on when smoke is detected.")
preferences {
    section("Devices") {
        input "smoke_detector", "capability.smokeDetector", required: true
        input "the_switch", "capability.switch", required: true
    }
}
def installed() { subscribe(smoke_detector, "smoke.detected", smokeHandler) }
def smokeHandler(evt) { the_switch.on() }
"""

SWITCH_MODE = """
definition(name: "Switch Mode", description: "Switch on means someone is home.")
preferences {
    section("Devices") {
        input "the_switch", "capability.switch", required: true
    }
}
def installed() { subscribe(the_switch, "switch.on", onHandler) }
def onHandler(evt) { setLocationMode("home") }
"""

HOME_LOCK = """
definition(name: "Home Lock", description: "Lock up once everyone is home.")
preferences {
    section("Devices") {
        input "front_door", "capability.lock", required: true
    }
}
def installed() { subscribe(location, "mode.home", homeHandler) }
def homeHandler(evt) { front_door.lock() }
"""


def main() -> None:
    sources = [SMOKE_LIGHTS, SWITCH_MODE, HOME_LOCK]

    print("=" * 72)
    print("Individually, each app is clean:")
    print("=" * 72)
    for source in sources:
        analysis = analyze_app(source)
        verdict = "clean" if not analysis.violations else "VIOLATIONS"
        print(f"  {analysis.app.name:15s} {analysis.model.size():3d} states  {verdict}")

    print()
    print("=" * 72)
    print("Installed together (union state model, Algorithm 2):")
    print("=" * 72)
    environment = analyze_environment(sources)
    print(render_report(environment))

    print()
    print("The interaction chain behind each violation:")
    for violation in environment.violations:
        print(f"  [{violation.property_id}] apps involved: {', '.join(violation.apps)}")
        for step in violation.counterexample:
            print(f"      {step}")

    print()
    print("=" * 72)
    print("Whole-corpus audit (batch driver, worker processes + cache):")
    print("=" * 72)
    from repro.corpus.loader import app_ids

    analyses = analyze_corpus("all")  # one sweep, one worker pool
    for dataset in ("official", "thirdparty", "maliot"):
        ids_in_dataset = app_ids(dataset)
        flagged = {
            app_id: sorted(analyses[app_id].violated_ids())
            for app_id in ids_in_dataset
            if analyses[app_id].violations
        }
        print(f"  {dataset:11s} {len(ids_in_dataset):3d} apps, {len(flagged)} flagged")
        for app_id, ids in flagged.items():
            print(f"      {app_id:6s} -> {', '.join(ids)}")


if __name__ == "__main__":
    main()
