#!/usr/bin/env python3
"""Quickstart: analyze one SmartThings app with Soteria.

Runs the full pipeline on the paper's Water-Leak-Detector example —
IR extraction, state-model extraction, general-property checks, and CTL
model checking of the applicable app-specific properties — then does the
same for a buggy variant that opens the valve on a leak.

Run:  python examples/quickstart.py
"""

from repro import analyze_app
from repro.reporting import render_report, to_dot

WATER_LEAK_DETECTOR = """
definition(
    name: "Water Leak Detector",
    namespace: "examples",
    author: "Soteria",
    description: "Shut off the main water valve when a leak is detected.",
    category: "Safety & Security")

preferences {
    section("When there's water detected...") {
        input "water_sensor", "capability.waterSensor", title: "Where?", required: true
    }
    section("Close this valve:") {
        input "valve_device", "capability.valve", title: "Which valve?", required: true
    }
}

def installed() {
    subscribe(water_sensor, "water.wet", waterWetHandler)
}

def updated() {
    unsubscribe()
    subscribe(water_sensor, "water.wet", waterWetHandler)
}

def waterWetHandler(evt) {
    log.debug "water detected: $evt.value"
    valve_device.close()
}
"""


def main() -> None:
    print("=" * 72)
    print("1. The correct app: every checked property holds")
    print("=" * 72)
    analysis = analyze_app(WATER_LEAK_DETECTOR)
    print(render_report(analysis))

    print()
    print("The extracted state model as GraphViz DOT (paper Fig. 9):")
    print(to_dot(analysis.model))

    print()
    print("=" * 72)
    print("2. A buggy variant: the handler opens the valve instead")
    print("=" * 72)
    buggy = WATER_LEAK_DETECTOR.replace("valve_device.close()", "valve_device.open()")
    bad = analyze_app(buggy)
    print(render_report(bad))

    print()
    print("Violations found:")
    for violation in bad.violations:
        print(f"  - {violation.short()}")
        print(f"    CTL: {violation.formula}")


if __name__ == "__main__":
    main()
