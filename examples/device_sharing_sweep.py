#!/usr/bin/env python3
"""Corpus-scale multi-app sweeps with a persistent analysis cache.

The paper analyzed three hand-picked multi-app groups (Table 4) and three
MalIoT environments (Appendix C).  The sweep engine generalizes both:

1. enumerate *candidate co-installations* straight from the corpus —
   apps sharing a device handle or the location-mode broadcast channel,
2. analyze every candidate's Algorithm-2 union model, fanning out over
   worker processes,
3. persist each per-app analysis in a disk-backed cache, so the next run
   of this script (or of ``soteria sweep``/``soteria corpus``) skips
   straight to union construction.

Run:  python examples/device_sharing_sweep.py
      python examples/device_sharing_sweep.py   # again: warm-cache rerun
"""

import time
from pathlib import Path

from repro.corpus.groundtruth import TABLE4_GROUPS
from repro.corpus.sweep import (
    environment_only_ids,
    groups_sharing_devices,
    pairs,
    sweep_environments,
)

#: Reruns of this script share one cache.  User-scoped on purpose: cache
#: entries are pickles, so the directory must not be writable by others
#: (a CI deployment would point this at the job's private cache volume).
CACHE_DIR = Path.home() / ".cache" / "soteria-example"


def main() -> None:
    print("=" * 72)
    print("Candidate co-installations of the MalIoT dataset:")
    print("=" * 72)
    for first, second, channels in pairs("maliot"):
        print(f"  {first:6s} + {second:6s}  via {', '.join(channels)}")

    print()
    print("=" * 72)
    print("The paper's groups are one-cluster universes:")
    print("=" * 72)
    for group in TABLE4_GROUPS:
        recovered = groups_sharing_devices(group.apps)
        print(f"  {group.group_id}: {recovered[0]}")

    print()
    print("=" * 72)
    print(f"Sweeping the Table 4 groups (cache: {CACHE_DIR}):")
    print("=" * 72)
    start = time.perf_counter()
    outcomes = sweep_environments(
        [group.apps for group in TABLE4_GROUPS], cache_dir=CACHE_DIR
    )
    elapsed = time.perf_counter() - start
    for group, outcome in zip(TABLE4_GROUPS, outcomes):
        found = environment_only_ids(outcome.environment)
        confirmed = sorted(found & set(group.violated))
        print(
            f"  {group.group_id}: union {outcome.environment.union_model.size():4d}"
            f" states, paper properties confirmed: {', '.join(confirmed)}"
        )
    print(f"  ({elapsed:.2f}s — rerun the script to see the warm-cache time)")

    print()
    print("=" * 72)
    print("Arbitrary-group sweep over the whole MalIoT dataset:")
    print("=" * 72)
    for outcome in sweep_environments(
        groups_sharing_devices("maliot"), cache_dir=CACHE_DIR
    ):
        label = "+".join(outcome.group)
        if outcome.failed:
            print(f"  {label}: FAILED ({outcome.error})")
        else:
            # Oversized clusters (the 13-app one unions to ~82 944
            # states) are no longer skipped: the auto backend checks
            # them symbolically, product never materialized.
            ids = sorted(outcome.violated_ids()) or ["clean"]
            print(f"  {label} [{outcome.backend}]: {', '.join(ids)}")


if __name__ == "__main__":
    main()
