#!/usr/bin/env python3
"""Dynamic policy enforcement: simulate an event trace with a monitor.

Soteria's static analysis flags the "night motion lights" app for P.2
(it switches the hallway light *off* when motion is detected).  This
example goes one step further — the paper's future-work direction that
became IoTGuard: replay a concrete evening of events against the extracted
state model with a runtime monitor that *blocks* the unsafe handler action
while letting everything else through.

Run:  python examples/runtime_enforcement.py
"""

from repro import analyze_app
from repro.platform.events import Event, EventKind
from repro.runtime import RuntimeMonitor, Simulator

NIGHT_LIGHT = """
definition(name: "Night Motion Lights", description: "Lights out on motion at night.")
preferences {
    section("Devices") {
        input "the_motion", "capability.motionSensor", required: true
        input "hall_light", "capability.switch", required: true
    }
}
def installed() {
    subscribe(the_motion, "motion.active", motionHandler)
    subscribe(the_motion, "motion.inactive", quietHandler)
}
def motionHandler(evt) {
    hall_light.off()
}
def quietHandler(evt) {
    hall_light.on()
}
"""


def motion(value: str) -> Event:
    return Event(EventKind.DEVICE, "the_motion", "motion", value)


def main() -> None:
    analysis = analyze_app(NIGHT_LIGHT)
    print("Static analysis verdict:")
    for violation in analysis.violations:
        print(f"  {violation.short()}")

    trace = [
        motion("active"),     # someone walks in — the app would kill the light
        motion("inactive"),
        motion("active"),
        motion("inactive"),
    ]

    print("\n--- Unmonitored replay (the app misbehaves) ---")
    simulator = Simulator(analysis.model)
    for event in trace:
        step = simulator.fire(event)
        light = analysis.model.value_in(step.target, "hall_light", "switch")
        print(f"  {event.label():24s} -> light is {light}")

    print("\n--- Monitored replay (unsafe actions blocked) ---")
    monitor = RuntimeMonitor.from_analysis(analysis)
    for event in trace:
        decision = monitor.feed(event)
        light = analysis.model.value_in(decision.state, "hall_light", "switch")
        note = ""
        if decision.intervened:
            ids = ", ".join(pid for _t, pid in decision.blocked)
            note = f"   [BLOCKED handler action — would violate {ids}]"
        print(f"  {event.label():24s} -> light is {light}{note}")

    print(f"\ninterventions: {len(monitor.interventions())} "
          f"(policies enforced: {len(monitor.policies)}, "
          f"left to static checking: {len(monitor.skipped)})")


if __name__ == "__main__":
    main()
