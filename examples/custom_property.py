#!/usr/bin/env python3
"""Authoring and checking a custom CTL property.

Soteria's catalog (P.1-P.30) is a starting point; this example writes a
household-specific property directly in CTL and verifies it against an
app's Kripke structure with all three engines — explicit, BDD-symbolic,
and SAT-bounded — the reproduction's NuSMV replacement.

Property: "whenever the garage door is open, it must be possible to reach
a state where it is closed again" (no lock-out):

    AG (attr:garage_door.door=open -> EF attr:garage_door.door=closed)

Run:  python examples/custom_property.py
"""

from repro import analyze_app
from repro.mc import parse_ctl
from repro.mc.bmc import BoundedChecker
from repro.mc.explicit import ExplicitChecker
from repro.mc.symbolic import SymbolicChecker
from repro.reporting.smv import to_smv

GARAGE_APP = """
definition(name: "Garage Manager", description: "Presence-driven garage door.")
preferences {
    section("Devices") {
        input "presence_sensor", "capability.presenceSensor", required: true
        input "garage_door", "capability.garageDoorControl", required: true
    }
}
def installed() {
    subscribe(presence_sensor, "presence", presenceHandler)
}
def presenceHandler(evt) {
    if (evt.value == "present") {
        garage_door.open()
    }
    if (evt.value == "not present") {
        garage_door.close()
    }
}
"""


def main() -> None:
    analysis = analyze_app(GARAGE_APP)
    kripke = analysis.kripke
    print(f"model: {analysis.model.size()} states, "
          f"{len(analysis.model.transitions)} transitions")

    no_lockout = parse_ctl(
        "AG (attr:garage_door.door=open -> EF attr:garage_door.door=closed)"
    )
    print(f"\nproperty: {no_lockout}")

    explicit = ExplicitChecker(kripke).check(no_lockout)
    print(f"explicit CTL:      {'HOLDS' if explicit.holds else 'FAILS'}")

    symbolic = SymbolicChecker(kripke).check(no_lockout)
    print(f"BDD-symbolic CTL:  {'HOLDS' if symbolic else 'FAILS'}")

    # BMC works on invariants; check the weaker safety shard "the door is
    # never *driven* open while nobody is home".
    invariant = parse_ctl(
        'AG !("attr:presence_sensor.presence=not present" & '
        '"act:garage_door.door=open")'
    )
    verdict, trace = BoundedChecker(kripke).check_invariant(invariant, bound=6)
    # Tri-state: HOLDS is a proof, VIOLATED carries a trace, UNKNOWN
    # means the bound ran out before the completeness bound.
    print(f"SAT-bounded invariant: {verdict.name}")
    for state in trace:
        print(f"    {state}")

    print("\nNuSMV export of the model (first lines):")
    for line in to_smv(analysis.model, specs=[no_lockout]).splitlines()[:12]:
        print(f"  {line}")


if __name__ == "__main__":
    main()
